#include "core/greedy.h"

namespace planorder::core {

StatusOr<std::unique_ptr<GreedyOrderer>> GreedyOrderer::Create(
    const stats::Workload* workload, utility::UtilityModel* model,
    std::vector<PlanSpace> spaces) {
  if (!model->fully_monotonic()) {
    return FailedPreconditionError(
        "Greedy requires a fully monotonic utility measure; '" +
        model->name() + "' is not");
  }
  PLANORDER_ASSIGN_OR_RETURN(spaces,
                             ValidateSpaces(*workload, std::move(spaces)));
  auto orderer =
      std::unique_ptr<GreedyOrderer>(new GreedyOrderer(workload, model));
  for (PlanSpace& space : spaces) {
    orderer->heap_.push(orderer->MakeEntry(std::move(space)));
  }
  return orderer;
}

GreedyOrderer::Entry GreedyOrderer::MakeEntry(PlanSpace space) {
  Entry entry;
  entry.best_plan.resize(space.buckets.size());
  for (size_t b = 0; b < space.buckets.size(); ++b) {
    int best = space.buckets[b][0];
    double best_score = model().MonotoneScore(static_cast<int>(b), best);
    for (size_t i = 1; i < space.buckets[b].size(); ++i) {
      const int candidate = space.buckets[b][i];
      const double score =
          model().MonotoneScore(static_cast<int>(b), candidate);
      if (score > best_score) {
        best = candidate;
        best_score = score;
      }
    }
    entry.best_plan[b] = best;
  }
  entry.utility = Evaluate(entry.best_plan);
  entry.space = std::move(space);
  return entry;
}

StatusOr<OrderedPlan> GreedyOrderer::ComputeNext() {
  if (heap_.empty()) return NotFoundError("plan spaces exhausted");
  Entry top = heap_.top();
  heap_.pop();
  for (PlanSpace& split : SplitAround(top.space, top.best_plan)) {
    heap_.push(MakeEntry(std::move(split)));
  }
  return OrderedPlan{top.best_plan, top.utility};
}

}  // namespace planorder::core
