#ifndef PLANORDER_CORE_PI_H_
#define PLANORDER_CORE_PI_H_

#include <memory>
#include <vector>

#include "core/orderer.h"

namespace planorder::core {

/// PI, the paper's reference algorithm (Section 6): the best brute-force
/// exact orderer. It materializes every concrete plan, evaluates all of
/// them once, and after each emission re-evaluates only the plans whose
/// utility may have changed — those not independent of the emitted plan.
///
/// With use_independence=false this degrades to the naive brute force that
/// re-evaluates everything every iteration (ablation baseline).
class PiOrderer : public Orderer {
 public:
  static StatusOr<std::unique_ptr<PiOrderer>> Create(
      const stats::Workload* workload, utility::UtilityModel* model,
      std::vector<PlanSpace> spaces, bool use_independence = true);

  std::string name() const override {
    return use_independence_ ? "pi" : "naive";
  }

 protected:
  StatusOr<OrderedPlan> ComputeNext() override;
  void OnExecuted(const ConcretePlan& plan) override;

 private:
  PiOrderer(const stats::Workload* workload, utility::UtilityModel* model,
            bool use_independence)
      : Orderer(workload, model), use_independence_(use_independence) {}

  bool use_independence_;
  std::vector<ConcretePlan> plans_;
  std::vector<double> utilities_;
  std::vector<char> dirty_;
};

}  // namespace planorder::core

#endif  // PLANORDER_CORE_PI_H_
