#ifndef PLANORDER_CORE_DRIPS_H_
#define PLANORDER_CORE_DRIPS_H_

#include <vector>

#include "base/status.h"
#include "core/abstraction.h"
#include "utility/model.h"

namespace planorder::core {

/// Result of a Drips run: the winning concrete plan.
struct DripsResult {
  /// The winner as an abstract plan (all leaves) — identifies which starting
  /// forest it came from via winner.forest.
  AbstractPlan winner;
  ConcretePlan plan;
  double utility = 0.0;
};

/// The Drips decision-theoretic planner (Section 5.1): given the top abstract
/// plan of each starting forest, iteratively refines the most promising
/// abstract plan and eliminates plans whose utility interval is dominated
/// (l_p >= h_q), until a single concrete plan survives — the highest-utility
/// concrete plan across the starts, found without evaluating most of them.
///
/// The bucket Drips refines next for `plan`: the non-leaf node with the most
/// members (-1 when the plan is concrete). Shared with the persistent iDrips
/// frontier so both refine identically.
int RefinementBucket(const AbstractPlan& plan);

/// Utilities are conditioned on `ctx`; `evaluations` (may be null) is
/// incremented once per plan evaluation, the paper's cost metric.
///
/// `evaluator` (may be null for a serial run) batches the child evaluations
/// of each refinement over its thread pool; results, elimination order and
/// evaluation counts are identical to the serial run.
class BatchEvaluator;
StatusOr<DripsResult> RunDrips(const std::vector<AbstractPlan>& starts,
                               const utility::UtilityModel& model,
                               const utility::ExecutionContext& ctx,
                               int64_t* evaluations,
                               bool probe_lower_bounds = false,
                               const BatchEvaluator* evaluator = nullptr);

}  // namespace planorder::core

#endif  // PLANORDER_CORE_DRIPS_H_
