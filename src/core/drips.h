#ifndef PLANORDER_CORE_DRIPS_H_
#define PLANORDER_CORE_DRIPS_H_

#include <vector>

#include "base/status.h"
#include "core/abstraction.h"
#include "utility/model.h"

namespace planorder::core {

/// Result of a Drips run: the winning concrete plan.
struct DripsResult {
  /// The winner as an abstract plan (all leaves) — identifies which starting
  /// forest it came from via winner.forest.
  AbstractPlan winner;
  ConcretePlan plan;
  double utility = 0.0;
};

/// The Drips decision-theoretic planner (Section 5.1): given the top abstract
/// plan of each starting forest, iteratively refines the most promising
/// abstract plan and eliminates plans whose utility interval is dominated
/// (l_p >= h_q), until a single concrete plan survives — the highest-utility
/// concrete plan across the starts, found without evaluating most of them.
///
/// Utilities are conditioned on `ctx`; `evaluations` (may be null) is
/// incremented once per plan evaluation, the paper's cost metric.
StatusOr<DripsResult> RunDrips(const std::vector<AbstractPlan>& starts,
                               utility::UtilityModel& model,
                               const utility::ExecutionContext& ctx,
                               int64_t* evaluations,
                               bool probe_lower_bounds = false);

}  // namespace planorder::core

#endif  // PLANORDER_CORE_DRIPS_H_
