// Section 7: adapting the plan-ordering machinery to the MiniCon
// reformulation algorithm.
//
// MiniCon builds MCDs (source descriptions covering SETS of subgoals),
// groups them into generalized buckets, and combines buckets that partition
// the query's subgoals into plan spaces whose every combination is sound —
// no containment check needed. This demo shows:
//   - an MCD forced to cover two subgoals at once (existential join
//     variable), producing a single-atom rewriting the naive bucket
//     combination cannot assemble,
//   - the generalized buckets and plan spaces,
//   - every MiniCon rewriting of the query.
//
// Build & run:  cmake --build build && ./build/examples/minicon_demo

#include <cstdio>

#include "datalog/parser.h"
#include "reformulation/minicon.h"

namespace {

using namespace planorder;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  datalog::Catalog catalog;
  for (auto [name, arity] : {std::pair<const char*, size_t>{"cites", 2},
                             {"same-topic", 2}}) {
    if (Status s = catalog.schema().AddRelation(name, arity); !s.ok()) {
      return Fail(s);
    }
  }
  // w joins internally: its existential B forces two-subgoal MCDs.
  const char* sources[] = {
      "w(P1,P2)   :- cites(P1,B), same-topic(B,P2)",
      "vc(P,Q)    :- cites(P,Q)",
      "vt(P,Q)    :- same-topic(P,Q)",
      "vt2(P,Q)   :- same-topic(P,Q)",
  };
  for (const char* text : sources) {
    if (auto id = catalog.AddSourceFromText(text); !id.ok()) {
      return Fail(id.status());
    }
  }
  auto query =
      datalog::ParseRule("q(X,Y) :- cites(X,B), same-topic(B,Y)");
  if (!query.ok()) return Fail(query.status());
  std::printf("query: %s\n\n", query->ToString().c_str());

  auto mcds = reformulation::FormMcds(*query, catalog);
  if (!mcds.ok()) return Fail(mcds.status());
  std::printf("MCDs:\n");
  for (const reformulation::Mcd& mcd : *mcds) {
    std::printf("  source %-4s covers subgoals {",
                catalog.source(mcd.source).name.c_str());
    for (size_t g = 0; g < query->body.size(); ++g) {
      if (mcd.subgoals & (uint64_t{1} << g)) std::printf(" %zu", g);
    }
    std::printf(" }\n");
  }

  const auto buckets = reformulation::GroupMcds(*mcds);
  std::printf("\ngeneralized buckets: %zu\n", buckets.size());
  const auto spaces = reformulation::BuildMcdPlanSpaces(*query, buckets);
  std::printf("plan spaces (partitions of the subgoals): %zu\n\n",
              spaces.size());

  auto plans = reformulation::EnumerateMiniConPlans(*query, catalog);
  if (!plans.ok()) return Fail(plans.status());
  std::printf("MiniCon rewritings (all sound by construction):\n");
  for (const reformulation::QueryPlan& plan : *plans) {
    std::printf("  %s\n", plan.rewriting.ToString().c_str());
  }
  std::printf(
      "\nnote the single-atom rewriting over w: the naive bucket-combination "
      "step cannot produce it (see tests/minicon_test.cc), which is why "
      "Section 7 adapts the orderers to MiniCon's generalized buckets.\n");
  return 0;
}
