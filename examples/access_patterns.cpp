// Dependent joins against sources with binding patterns — the execution
// strategy cost measure (2) models. Builds a materialized synthetic domain,
// orders its plans by modeled cost, executes each by feeding bindings into
// the sources left to right, and prints modeled vs measured cost side by
// side: the ordering the ranker produces is the ordering you actually want
// to execute in.
//
// Build & run:  cmake --build build && ./build/examples/access_patterns

#include <cstdio>

#include "core/pi.h"
#include "exec/dependent_join.h"
#include "exec/source_access.h"
#include "exec/synthetic_domain.h"
#include "reformulation/rewriting.h"
#include "utility/cost_models.h"

namespace {

using namespace planorder;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  stats::WorkloadOptions options;
  options.query_length = 3;
  options.bucket_size = 4;
  options.overlap_rate = 0.4;
  options.regions_per_bucket = 8;
  options.seed = 11;
  auto domain = exec::BuildSyntheticDomain(options, /*num_answers=*/800);
  if (!domain.ok()) return Fail(domain.status());
  const exec::SyntheticDomain& d = **domain;

  // Materialize every source behind a binding-pattern interface.
  exec::SourceRegistry registry;
  for (datalog::SourceId id = 0; id < d.catalog.num_sources(); ++id) {
    const std::string& name = d.catalog.source(id).name;
    auto source = registry.Register(name, 2);
    if (!source.ok()) return Fail(source.status());
    for (const auto& tuple : d.source_facts.TuplesFor(name)) {
      if (Status s = (*source)->Add(tuple); !s.ok()) return Fail(s);
    }
  }

  auto model = utility::BoundJoinCostModel::Create(&d.workload,
                                                   utility::BoundJoinOptions{});
  if (!model.ok()) return Fail(model.status());
  auto orderer = core::PiOrderer::Create(
      &d.workload, model->get(), {core::PlanSpace::FullSpace(d.workload)});
  if (!orderer.ok()) return Fail(orderer.status());

  std::printf("query: %s\n", d.query.ToString().c_str());
  std::printf("%4s  %12s  %12s  %7s  %8s  %s\n", "rank", "modeled-cost",
              "measured", "calls", "shipped", "answers");
  const double h = d.workload.access_overhead();
  for (int rank = 1; rank <= 12; ++rank) {
    auto next = (*orderer)->Next();
    if (!next.ok()) break;
    std::vector<datalog::SourceId> choice(next->plan.size());
    std::vector<double> alphas(next->plan.size());
    for (size_t b = 0; b < next->plan.size(); ++b) {
      choice[b] = d.source_ids[b][next->plan[b]];
      alphas[b] =
          d.workload.source(static_cast<int>(b), next->plan[b]).transmission_cost;
    }
    auto plan = reformulation::BuildSoundPlan(d.query, d.catalog, choice);
    if (!plan.ok()) return Fail(plan.status());
    if (!plan->has_value()) {
      (*orderer)->ReportDiscarded();
      continue;
    }
    registry.ResetStats();
    exec::ExecutionTrace trace;
    auto answers =
        exec::ExecutePlanDependent((*plan)->rewriting, registry, &trace);
    if (!answers.ok()) return Fail(answers.status());
    std::printf("%4d  %12.1f  %12.1f  %7lld  %8lld  %zu\n", rank,
                -next->utility, trace.ModeledCost(h, alphas),
                static_cast<long long>(trace.TotalCalls()),
                static_cast<long long>(trace.TotalTuplesShipped()),
                answers->size());
  }
  std::printf(
      "\nmodeled cost is the ranker's estimate (measure (2)); measured cost "
      "prices the actual source calls (h=%g per call) and shipped tuples "
      "(alpha each) of the dependent-join execution.\n",
      h);
  return 0;
}
