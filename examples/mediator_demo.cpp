// Full mediator pipeline on a materialized synthetic domain: the anytime
// answer curve the paper's introduction motivates.
//
// Builds a chain-query integration domain with real (generated) source
// instances, then runs the complete Section 2 pipeline twice:
//   - plans ordered by conditional coverage with Streamer,
//   - plans in arbitrary (enumeration) order,
// executing each sound plan against the sources and printing how fast the
// distinct answers accumulate. Ordering by utility front-loads the answers;
// that is the whole point of plan ordering.
//
// Build & run:  cmake --build build && ./build/examples/mediator_demo

#include <cstdio>

#include "core/pi.h"
#include "core/streamer.h"
#include "exec/mediator.h"
#include "exec/synthetic_domain.h"
#include "utility/coverage_model.h"

namespace {

using namespace planorder;

/// An orderer that just enumerates plans in space order — what a mediator
/// without plan ordering would execute.
class ArbitraryOrderer : public core::Orderer {
 public:
  ArbitraryOrderer(const stats::Workload* workload,
                   utility::UtilityModel* model)
      : Orderer(workload, model) {
    const core::PlanSpace space = core::PlanSpace::FullSpace(*workload);
    utility::ConcretePlan plan(space.buckets.size());
    std::vector<size_t> cursor(space.buckets.size(), 0);
    while (true) {
      for (size_t b = 0; b < space.buckets.size(); ++b) {
        plan[b] = space.buckets[b][cursor[b]];
      }
      plans_.push_back(plan);
      size_t b = 0;
      for (; b < space.buckets.size(); ++b) {
        if (++cursor[b] < space.buckets[b].size()) break;
        cursor[b] = 0;
      }
      if (b == space.buckets.size()) break;
    }
  }

  std::string name() const override { return "arbitrary"; }

 protected:
  StatusOr<core::OrderedPlan> ComputeNext() override {
    if (next_ >= plans_.size()) return NotFoundError("exhausted");
    core::OrderedPlan out{plans_[next_], Evaluate(plans_[next_])};
    ++next_;
    return out;
  }

 private:
  std::vector<utility::ConcretePlan> plans_;
  size_t next_ = 0;
};

}  // namespace

int main() {
  stats::WorkloadOptions options;
  options.query_length = 3;
  options.bucket_size = 6;
  options.overlap_rate = 0.35;
  options.regions_per_bucket = 12;
  options.seed = 7;
  auto domain = exec::BuildSyntheticDomain(options, /*num_answers=*/2000);
  if (!domain.ok()) {
    std::fprintf(stderr, "error: %s\n", domain.status().ToString().c_str());
    return 1;
  }
  const exec::SyntheticDomain& d = **domain;
  std::printf("domain: query %s over %d sources, %zu ground-truth answers\n",
              d.query.ToString().c_str(), d.catalog.num_sources(),
              d.num_answers);

  exec::Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  const int plans_to_run = 24;

  utility::CoverageModel model_a(&d.workload);
  auto streamer = core::StreamerOrderer::Create(
      &d.workload, &model_a, {core::PlanSpace::FullSpace(d.workload)});
  if (!streamer.ok()) {
    std::fprintf(stderr, "error: %s\n", streamer.status().ToString().c_str());
    return 1;
  }
  auto ordered = mediator.Run(**streamer, plans_to_run);

  utility::CoverageModel model_b(&d.workload);
  ArbitraryOrderer arbitrary(&d.workload, &model_b);
  auto unordered = mediator.Run(arbitrary, plans_to_run);

  if (!ordered.ok() || !unordered.ok()) {
    std::fprintf(stderr, "mediator failed\n");
    return 1;
  }

  std::printf("\nanytime answer curve (distinct answers after n plans):\n");
  std::printf("%6s  %22s  %22s\n", "plan", "coverage-ordered", "arbitrary");
  for (int i = 0; i < plans_to_run; ++i) {
    const size_t a = i < static_cast<int>(ordered->steps.size())
                         ? ordered->steps[i].total_answers
                         : ordered->total_answers;
    const size_t b = i < static_cast<int>(unordered->steps.size())
                         ? unordered->steps[i].total_answers
                         : unordered->total_answers;
    std::printf("%6d  %10zu (%5.1f%%)  %10zu (%5.1f%%)\n", i + 1, a,
                100.0 * a / d.num_answers, b, 100.0 * b / d.num_answers);
  }
  std::printf(
      "\nafter %d of %d plans: ordered mediator has %.1f%%, arbitrary "
      "%.1f%% of all answers\n",
      plans_to_run, 6 * 6 * 6,
      100.0 * ordered->total_answers / d.num_answers,
      100.0 * unordered->total_answers / d.num_answers);
  return 0;
}
