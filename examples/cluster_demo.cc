// The sharded cluster with a cross-session source-operation cache
// (src/cluster/, DESIGN.md §10): two sessions of the same query class run
// back to back against one SourceOperationCache, and the demo prints how the
// second session's plan ORDER shifts — not because the query changed, but
// because the first session's fetches made some source operations free, and
// the cache-aware utility measure (failure/cache, paper Section 6) re-ranks
// the not-yet-executed plans around the now-zero-cost sources.
//
//   1. Session A drains cold: every fetch pays simulated network latency and
//      publishes its result into the shared cache.
//   2. Session B (isomorphic query, fresh session) drains against the warm
//      cache: its orderer polls the residency view before every emission, so
//      plans over cached sources are charged zero residual cost and jump
//      ahead. The demo prints both emission sequences side by side plus the
//      cache hit counters proving B's fetches were served locally.
//   3. MergedMetrics() shows the cluster-level aggregation (per-shard
//      counters summed, latency percentiles recomputed over pooled samples).
//
// Build & run:  cmake --build build && ./build/examples/cluster_demo

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/sharded_service.h"
#include "cluster/source_cache.h"
#include "exec/synthetic_domain.h"
#include "runtime/source_runtime.h"
#include "utility/measures.h"

using namespace planorder;

namespace {

/// Renders one session's emission order as "p3 p1 p0 ..." where the digits
/// are each plan's source choices per bucket — enough to see reordering.
std::string PlanTrace(const std::vector<exec::MediatorStep>& steps) {
  std::string trace;
  for (const exec::MediatorStep& step : steps) {
    trace += " [";
    for (size_t b = 0; b < step.plan.size(); ++b) {
      if (b > 0) trace += ".";
      trace += std::to_string(step.plan[b]);
    }
    trace += "]";
  }
  return trace;
}

}  // namespace

int main() {
  stats::WorkloadOptions wopts;
  wopts.query_length = 2;
  wopts.bucket_size = 3;
  wopts.overlap_rate = 0.5;
  wopts.regions_per_bucket = 8;
  wopts.seed = 29;
  auto domain = exec::BuildSyntheticDomain(wopts, /*num_answers=*/200);
  if (!domain.ok()) {
    std::printf("domain: %s\n", domain.status().ToString().c_str());
    return 1;
  }
  const exec::SyntheticDomain& d = **domain;
  uint64_t num_plans = 1;
  for (int b = 0; b < d.workload.num_buckets(); ++b) {
    num_plans *= uint64_t(d.workload.bucket_size(b));
  }
  std::printf("query: %s (%d plans)\n\n", d.query.ToString().c_str(),
              int(num_plans));

  // Sources behind the resilient runtime with simulated latency; the shared
  // cache sits in the fetch path, so a repeat operation costs nothing.
  exec::SourceRegistry registry;
  for (datalog::SourceId id = 0; id < d.catalog.num_sources(); ++id) {
    const std::string& name = d.catalog.source(id).name;
    auto source = registry.Register(name, 2);
    if (!source.ok()) return 1;
    for (const auto& tuple : d.source_facts.TuplesFor(name)) {
      if (!(*source)->Add(tuple).ok()) return 1;
    }
  }
  cluster::SourceOperationCache cache;
  runtime::RuntimeOptions ropts;
  ropts.num_threads = 2;
  ropts.time_dilation = 0.0;  // simulated latency, no real sleeping
  ropts.default_model.base_latency_ms = 5.0;
  ropts.source_cache = &cache;
  runtime::SourceRuntime runtime(&registry, ropts);

  cluster::ClusterOptions copts;
  copts.num_shards = 2;
  copts.source_cache = &cache;
  copts.shard.orderer = service::ServiceOptions::OrdererKind::kIDrips;
  copts.shard.measure = utility::MeasureKind::kFailureCache;
  cluster::ShardedService cluster_service(&d.catalog, &d.source_facts, copts,
                                          &runtime);
  std::printf("cluster: %d shards, query class routes to shard %d\n\n",
              cluster_service.num_shards(), cluster_service.ShardFor(d.query));

  exec::Mediator::RunLimits limits;
  limits.max_plans = int(num_plans);

  auto drain = [&](const char* label) -> std::vector<exec::MediatorStep> {
    std::vector<exec::MediatorStep> steps;
    auto session = cluster_service.OpenSession(d.query, limits);
    if (!session.ok()) {
      std::printf("%s: %s\n", label, session.status().ToString().c_str());
      return steps;
    }
    while (true) {
      auto step = (*session)->NextStep();
      if (!step.ok()) break;
      steps.push_back(*step);
    }
    (*session)->Finish();
    return steps;
  };

  // 1. Session A: cold cache — pays full latency, fills the cache.
  const auto before = cache.stats();
  const std::vector<exec::MediatorStep> first = drain("session A");
  const auto mid = cache.stats();
  std::printf("session A (cold cache):%s\n", PlanTrace(first).c_str());
  std::printf("  cache after A: %lld entries resident, %lld hits\n\n",
              static_cast<long long>(mid.resident_entries),
              static_cast<long long>(mid.hits - before.hits));

  // 2. Session B: warm cache — the residency view zeroes the residual cost
  //    of A's operations, so the cache-aware measure re-ranks the plans.
  const std::vector<exec::MediatorStep> second = drain("session B");
  const auto after = cache.stats();
  std::printf("session B (warm cache):%s\n", PlanTrace(second).c_str());
  std::printf("  cache during B: %lld hits (fetches served without paying "
              "latency)\n",
              static_cast<long long>(after.hits - mid.hits));

  bool shifted = first.size() == second.size() && !first.empty();
  bool same_order = true;
  for (size_t i = 0; i < first.size() && i < second.size(); ++i) {
    if (first[i].plan != second[i].plan) same_order = false;
  }
  std::printf("  plan order shifted vs session A: %s\n\n",
              shifted && !same_order
                  ? "yes (cross-session cache re-ranked the plans)"
                  : "no (see utilities above)");

  // 3. Cluster-wide metrics: counters summed across shards, percentiles
  //    recomputed exactly over the pooled latency samples.
  const service::ServiceMetricsSnapshot m = cluster_service.MergedMetrics();
  std::printf("merged metrics: %lld sessions completed, %lld source-cache "
              "hits, latency p50=%.2fms p99=%.2fms over %zu sessions\n",
              static_cast<long long>(m.sessions_completed),
              static_cast<long long>(m.runtime.source_cache_hits),
              m.latency_p50_ms, m.latency_p99_ms, m.latency_count);
  return 0;
}
