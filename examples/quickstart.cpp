// Quickstart: the paper's Figure 1 movie domain, end to end.
//
//  1. declare the mediated schema and the six LAV sources,
//  2. pose the query "reviews of movies starring Ford",
//  3. build the buckets (the reformulation step),
//  4. order the 3 x 3 plan space by a cost measure with the Greedy
//     algorithm (Section 4) and print the plans as they stream out,
//     soundness-checked and rewritten over the sources.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/greedy.h"
#include "datalog/parser.h"
#include "reformulation/bucket.h"
#include "reformulation/rewriting.h"
#include "utility/cost_models.h"

namespace {

using namespace planorder;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // --- Schema and sources (Figure 1). -----------------------------------
  datalog::Catalog catalog;
  for (auto [name, arity] : {std::pair<const char*, size_t>{"play-in", 2},
                             {"review-of", 2},
                             {"american", 1},
                             {"russian", 1}}) {
    if (Status s = catalog.schema().AddRelation(name, arity); !s.ok()) {
      return Fail(s);
    }
  }
  const char* source_texts[] = {
      "v1(A,M) :- play-in(A,M), american(M)",
      "v2(A,M) :- play-in(A,M), russian(M)",
      "v3(A,M) :- play-in(A,M)",
      "v4(R,M) :- review-of(R,M)",
      "v5(R,M) :- review-of(R,M)",
      "v6(R,M) :- review-of(R,M)",
  };
  for (const char* text : source_texts) {
    if (auto id = catalog.AddSourceFromText(text); !id.ok()) {
      return Fail(id.status());
    }
  }

  // --- Query and buckets. ------------------------------------------------
  auto query = datalog::ParseRule("q(M,R) :- play-in(ford,M), review-of(R,M)");
  if (!query.ok()) return Fail(query.status());
  auto buckets = reformulation::BuildBuckets(*query, catalog);
  if (!buckets.ok()) return Fail(buckets.status());
  std::printf("query: %s\n", query->ToString().c_str());
  for (size_t b = 0; b < buckets->buckets.size(); ++b) {
    std::printf("bucket %zu:", b);
    for (datalog::SourceId id : buckets->buckets[b]) {
      std::printf(" %s", catalog.source(id).name.c_str());
    }
    std::printf("\n");
  }

  // --- Per-source statistics (hand-written for the demo). ----------------
  // Access overhead h = 5; alpha and cardinality vary per source, making
  // cheap small sources attractive.
  std::vector<std::vector<stats::SourceStats>> bucket_stats(2);
  const double cardinalities[] = {40, 25, 120, 300, 80, 150};
  const double alphas[] = {0.30, 0.50, 0.20, 0.10, 0.40, 0.25};
  for (size_t b = 0; b < 2; ++b) {
    for (size_t i = 0; i < 3; ++i) {
      stats::SourceStats s;
      s.cardinality = cardinalities[3 * b + i];
      s.transmission_cost = alphas[3 * b + i];
      s.regions.bits = 1;  // coverage unused by this example
      bucket_stats[b].push_back(s);
    }
  }
  auto workload = stats::Workload::FromParts(
      bucket_stats, {{1.0}, {1.0}}, /*access_overhead=*/5.0,
      /*domain_sizes=*/{500.0, 500.0});
  if (!workload.ok()) return Fail(workload.status());

  // --- Order plans with Greedy under the additive cost measure (1). ------
  utility::AdditiveCostModel model(&*workload);
  auto greedy = core::GreedyOrderer::Create(
      &*workload, &model, {core::PlanSpace::FullSpace(*workload)});
  if (!greedy.ok()) return Fail(greedy.status());

  std::printf("\nplans in decreasing utility (increasing cost):\n");
  int rank = 0;
  while (true) {
    auto next = (*greedy)->Next();
    if (!next.ok()) break;
    // Map bucket positions back to catalog sources & build the rewriting.
    std::vector<datalog::SourceId> choice(next->plan.size());
    for (size_t b = 0; b < next->plan.size(); ++b) {
      choice[b] = buckets->buckets[b][next->plan[b]];
    }
    auto plan = reformulation::BuildSoundPlan(*query, catalog, choice);
    if (!plan.ok()) return Fail(plan.status());
    std::printf("%2d. cost=%7.2f  %s\n", ++rank, -next->utility,
                plan->has_value()
                    ? (*plan)->rewriting.ToString().c_str()
                    : "(unsound combination, discarded)");
    if (!plan->has_value()) (*greedy)->ReportDiscarded();
  }
  std::printf("\n%lld plan evaluations for %d plans (brute force: 9)\n",
              static_cast<long long>((*greedy)->plan_evaluations()), rank);
  return 0;
}
