// planorder_cli: order the query plans of a text-described integration
// domain.
//
// Usage:  planorder_cli <domain-file>
//
// Domain file directives (line oriented, '%' starts a comment):
//
//   relation <name> <arity>
//   source <view rule>                 e.g. source v1(A,M) :- play-in(A,M)
//   binding <source> <pattern>         access adornment, e.g. binding v4 fb
//                                      ('b' = caller must bind the position)
//   stats <source> key=value...        keys: cardinality alpha failure fee
//                                      regions=<a>-<b> or regions=i,j,k
//   regions-per-bucket <n>             default 16
//   overhead <h>                       access overhead, default 5
//   measure <name>                     additive | cost2 | cost2-uniform-alpha
//                                      | failure-nocache | failure-cache
//                                      | monetary | monetary-cache | coverage
//   algorithm <name>                   greedy | streamer | idrips | pi | naive
//   emit <k>                           how many plans to print (default 10)
//   query <rule>                       the user query (required, once)
//   fact <atom>                        a source tuple, e.g. fact v1(ford, m1)
//   execute                            run the mediator over the facts and
//                                      print the anytime answer table
//
// The tool builds the buckets, derives a workload from the per-source
// statistics, streams the first k plans from the chosen algorithm, tests
// each for soundness and prints the rewriting. See examples/movies.domain.

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/greedy.h"
#include "core/idrips.h"
#include "core/pi.h"
#include "core/streamer.h"
#include "datalog/parser.h"
#include "exec/mediator.h"
#include "reformulation/bucket.h"
#include "reformulation/executable_order.h"
#include "reformulation/rewriting.h"
#include "utility/measures.h"

namespace {

using namespace planorder;

struct CliConfig {
  datalog::Catalog catalog;
  std::optional<datalog::ConjunctiveQuery> query;
  std::map<std::string, stats::SourceStats> stats_by_source;
  datalog::Database facts;
  bool execute = false;
  int regions_per_bucket = 16;
  double overhead = 5.0;
  std::string measure = "cost2";
  std::string algorithm = "streamer";
  int emit = 10;
};

StatusOr<stats::RegionMask> ParseRegions(const std::string& spec, int limit) {
  stats::RegionMask mask;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, ',')) {
    const size_t dash = part.find('-');
    int lo, hi;
    if (dash == std::string::npos) {
      lo = hi = std::atoi(part.c_str());
    } else {
      lo = std::atoi(part.substr(0, dash).c_str());
      hi = std::atoi(part.substr(dash + 1).c_str());
    }
    if (lo < 0 || hi >= limit || lo > hi) {
      return InvalidArgumentError("bad region spec '" + spec + "'");
    }
    for (int r = lo; r <= hi; ++r) mask.bits |= uint64_t{1} << r;
  }
  if (mask.empty()) return InvalidArgumentError("empty region spec");
  return mask;
}

StatusOr<utility::MeasureKind> ParseMeasure(const std::string& name) {
  for (utility::MeasureKind kind :
       {utility::MeasureKind::kAdditive, utility::MeasureKind::kCost2,
        utility::MeasureKind::kCost2UniformAlpha,
        utility::MeasureKind::kFailureNoCache,
        utility::MeasureKind::kFailureCache, utility::MeasureKind::kMonetary,
        utility::MeasureKind::kMonetaryCache,
        utility::MeasureKind::kCoverage}) {
    if (utility::MeasureKindName(kind) == name) return kind;
  }
  return InvalidArgumentError("unknown measure '" + name + "'");
}

StatusOr<CliConfig> ParseDomainFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open '" + path + "'");
  CliConfig config;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t comment = line.find('%');
    if (comment != std::string::npos) line = line.substr(0, comment);
    std::stringstream ss(line);
    std::string directive;
    if (!(ss >> directive)) continue;
    auto fail = [&](const std::string& message) {
      return InvalidArgumentError(path + ":" + std::to_string(line_number) +
                                  ": " + message);
    };
    if (directive == "relation") {
      std::string name;
      size_t arity;
      if (!(ss >> name >> arity)) return fail("relation <name> <arity>");
      PLANORDER_RETURN_IF_ERROR(config.catalog.schema().AddRelation(name, arity));
    } else if (directive == "source") {
      std::string rest;
      std::getline(ss, rest);
      auto id = config.catalog.AddSourceFromText(rest);
      if (!id.ok()) return fail(id.status().ToString());
    } else if (directive == "binding") {
      std::string source, pattern;
      if (!(ss >> source >> pattern)) return fail("binding <source> <pattern>");
      datalog::SourceId id = -1;
      for (datalog::SourceId i = 0; i < config.catalog.num_sources(); ++i) {
        if (config.catalog.source(i).name == source) id = i;
      }
      if (id < 0) return fail("unknown source '" + source + "'");
      if (Status s = config.catalog.SetBindingPattern(id, pattern); !s.ok()) {
        return fail(s.ToString());
      }
    } else if (directive == "stats") {
      std::string source;
      if (!(ss >> source)) return fail("stats <source> key=value...");
      stats::SourceStats& s = config.stats_by_source[source];
      std::string kv;
      while (ss >> kv) {
        const size_t eq = kv.find('=');
        if (eq == std::string::npos) return fail("expected key=value");
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "cardinality") {
          s.cardinality = std::atof(value.c_str());
        } else if (key == "alpha") {
          s.transmission_cost = std::atof(value.c_str());
        } else if (key == "failure") {
          s.failure_prob = std::atof(value.c_str());
        } else if (key == "fee") {
          s.fee = std::atof(value.c_str());
        } else if (key == "regions") {
          PLANORDER_ASSIGN_OR_RETURN(
              s.regions, ParseRegions(value, config.regions_per_bucket));
        } else {
          return fail("unknown stats key '" + key + "'");
        }
      }
    } else if (directive == "regions-per-bucket") {
      if (!(ss >> config.regions_per_bucket)) return fail("expected number");
    } else if (directive == "overhead") {
      if (!(ss >> config.overhead)) return fail("expected number");
    } else if (directive == "measure") {
      if (!(ss >> config.measure)) return fail("expected measure name");
    } else if (directive == "algorithm") {
      if (!(ss >> config.algorithm)) return fail("expected algorithm name");
    } else if (directive == "emit") {
      if (!(ss >> config.emit)) return fail("expected number");
    } else if (directive == "fact") {
      std::string rest;
      std::getline(ss, rest);
      auto atom = datalog::ParseAtom(rest);
      if (!atom.ok()) return fail(atom.status().ToString());
      if (!atom->IsGround()) return fail("facts must be ground");
      config.facts.AddFact(*atom);
    } else if (directive == "execute") {
      config.execute = true;
    } else if (directive == "query") {
      std::string rest;
      std::getline(ss, rest);
      auto query = datalog::ParseRule(rest);
      if (!query.ok()) return fail(query.status().ToString());
      config.query = *query;
    } else {
      return fail("unknown directive '" + directive + "'");
    }
  }
  if (!config.query.has_value()) {
    return InvalidArgumentError(path + ": missing 'query' directive");
  }
  return config;
}

StatusOr<std::unique_ptr<core::Orderer>> MakeOrderer(
    const CliConfig& config, const stats::Workload* workload,
    utility::UtilityModel* model) {
  std::vector<core::PlanSpace> spaces = {core::PlanSpace::FullSpace(*workload)};
  if (config.algorithm == "greedy") {
    PLANORDER_ASSIGN_OR_RETURN(
        std::unique_ptr<core::GreedyOrderer> o,
        core::GreedyOrderer::Create(workload, model, std::move(spaces)));
    return std::unique_ptr<core::Orderer>(std::move(o));
  }
  if (config.algorithm == "streamer") {
    PLANORDER_ASSIGN_OR_RETURN(
        std::unique_ptr<core::StreamerOrderer> o,
        core::StreamerOrderer::Create(workload, model, std::move(spaces)));
    return std::unique_ptr<core::Orderer>(std::move(o));
  }
  if (config.algorithm == "idrips") {
    PLANORDER_ASSIGN_OR_RETURN(
        std::unique_ptr<core::IDripsOrderer> o,
        core::IDripsOrderer::Create(workload, model, std::move(spaces)));
    return std::unique_ptr<core::Orderer>(std::move(o));
  }
  if (config.algorithm == "pi" || config.algorithm == "naive") {
    PLANORDER_ASSIGN_OR_RETURN(
        std::unique_ptr<core::PiOrderer> o,
        core::PiOrderer::Create(workload, model, std::move(spaces),
                                config.algorithm == "pi"));
    return std::unique_ptr<core::Orderer>(std::move(o));
  }
  return InvalidArgumentError("unknown algorithm '" + config.algorithm + "'");
}

Status Run(const std::string& path) {
  PLANORDER_ASSIGN_OR_RETURN(CliConfig config, ParseDomainFile(path));
  PLANORDER_ASSIGN_OR_RETURN(
      reformulation::BucketResult buckets,
      reformulation::BuildBuckets(*config.query, config.catalog));

  std::printf("query: %s\n", config.query->ToString().c_str());
  std::vector<std::vector<stats::SourceStats>> bucket_stats;
  std::vector<std::vector<double>> weights;
  std::vector<double> domain_sizes;
  for (size_t b = 0; b < buckets.buckets.size(); ++b) {
    if (buckets.buckets[b].empty()) {
      std::printf("subgoal %zu has no relevant source: no plans.\n", b);
      return OkStatus();
    }
    std::printf("bucket %zu:", b);
    std::vector<stats::SourceStats> members;
    double max_cardinality = 1.0;
    for (datalog::SourceId id : buckets.buckets[b]) {
      const std::string& name = config.catalog.source(id).name;
      std::printf(" %s", name.c_str());
      stats::SourceStats s;
      auto it = config.stats_by_source.find(name);
      if (it != config.stats_by_source.end()) s = it->second;
      if (s.regions.empty()) s.regions.bits = 1;
      max_cardinality = std::max(max_cardinality, s.cardinality);
      members.push_back(s);
    }
    std::printf("\n");
    bucket_stats.push_back(std::move(members));
    weights.emplace_back(config.regions_per_bucket,
                         1.0 / config.regions_per_bucket);
    domain_sizes.push_back(4.0 * max_cardinality);
  }
  PLANORDER_ASSIGN_OR_RETURN(
      stats::Workload workload,
      stats::Workload::FromParts(std::move(bucket_stats), std::move(weights),
                                 config.overhead, std::move(domain_sizes)));

  PLANORDER_ASSIGN_OR_RETURN(utility::MeasureKind kind,
                             ParseMeasure(config.measure));
  PLANORDER_ASSIGN_OR_RETURN(std::unique_ptr<utility::UtilityModel> model,
                             utility::MakeMeasure(kind, &workload));
  PLANORDER_ASSIGN_OR_RETURN(std::unique_ptr<core::Orderer> orderer,
                             MakeOrderer(config, &workload, model.get()));

  if (config.execute) {
    // Full mediation: execute the ordered plans over the declared facts and
    // print the anytime answer table.
    std::vector<std::vector<datalog::SourceId>> source_ids = buckets.buckets;
    exec::Mediator mediator(&config.catalog, *config.query, &config.facts,
                            source_ids);
    PLANORDER_ASSIGN_OR_RETURN(exec::MediatorResult result,
                               mediator.Run(*orderer, config.emit));
    std::printf("\nmediation with %s under '%s':\n", orderer->name().c_str(),
                model->name().c_str());
    std::printf("%4s  %10s  %6s  %6s  %6s\n", "plan", "utility", "sound",
                "new", "total");
    for (size_t i = 0; i < result.steps.size(); ++i) {
      const exec::MediatorStep& step = result.steps[i];
      std::printf("%4zu  %10.4f  %6s  %6zu  %6zu\n", i + 1,
                  step.estimated_utility,
                  !step.sound ? "no" : (step.executable ? "yes" : "stuck"),
                  step.new_answers, step.total_answers);
    }
    std::printf("\n%zu distinct answers from %zu sound plans; %lld plan "
                "evaluations\n",
                result.total_answers, result.sound_plans,
                static_cast<long long>(orderer->plan_evaluations()));
    return OkStatus();
  }

  std::printf("\n%s ordering under '%s' (first %d plans):\n",
              orderer->name().c_str(), model->name().c_str(), config.emit);
  int emitted = 0;
  while (emitted < config.emit) {
    auto next = orderer->Next();
    if (!next.ok()) {
      if (next.status().code() == StatusCode::kNotFound) break;
      return next.status();
    }
    std::vector<datalog::SourceId> choice(next->plan.size());
    for (size_t b = 0; b < next->plan.size(); ++b) {
      choice[b] = buckets.buckets[b][next->plan[b]];
    }
    PLANORDER_ASSIGN_OR_RETURN(
        std::optional<reformulation::QueryPlan> plan,
        reformulation::BuildSoundPlan(*config.query, config.catalog, choice));
    if (!plan.has_value()) {
      orderer->ReportDiscarded();
      continue;  // unsound combination: skip without counting
    }
    auto ordered = reformulation::FindExecutableOrder(*plan, config.catalog);
    if (!ordered.ok()) {
      orderer->ReportDiscarded();
      continue;  // sound but not executable under the access patterns
    }
    ++emitted;
    std::printf("%3d. utility=%10.4f  %s\n", emitted, next->utility,
                ordered->rewriting.ToString().c_str());
  }
  std::printf("\n%d sound plans emitted; %lld plan evaluations\n", emitted,
              static_cast<long long>(orderer->plan_evaluations()));
  return OkStatus();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <domain-file>\n", argv[0]);
    return 2;
  }
  Status status = Run(argv[1]);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
