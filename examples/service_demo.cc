// The mediator as a multi-query service: concurrent client sessions over one
// shared reformulation cache, with streaming answers and admission control.
//
// Builds a synthetic integration domain, then
//   1. runs one query cold (cache miss: bucket algorithm + workload
//      estimation) and an isomorphic variant hot (cache hit: both collapse
//      to one canonical form), showing identical step traces;
//   2. streams a session step by step — the anytime pull API;
//   3. saturates admission with more clients than slots, showing queueing
//      and load shedding (kResourceExhausted);
//   4. prints the service metrics: cache hit rate, queue depth, latency
//      percentiles.
//
// Build & run:  cmake --build build && ./build/examples/service_demo

#include <cstdio>
#include <thread>
#include <vector>

#include "datalog/unify.h"
#include "exec/synthetic_domain.h"
#include "service/query_service.h"

namespace {

using namespace planorder;

/// An isomorphic copy of `query`: every variable renamed. Same query class,
/// different text — exactly what the canonical cache collapses.
datalog::ConjunctiveQuery RenameVariables(
    const datalog::ConjunctiveQuery& query, const char* suffix) {
  datalog::Substitution renaming;
  auto collect = [&renaming, suffix](const datalog::Atom& atom) {
    for (const datalog::Term& term : atom.args) {
      if (term.is_variable()) {
        renaming[term.name()] = datalog::Term::Variable(term.name() + suffix);
      }
    }
  };
  collect(query.head);
  for (const datalog::Atom& atom : query.body) collect(atom);
  datalog::ConjunctiveQuery renamed(
      datalog::ApplySubstitution(query.head, renaming), {});
  for (const datalog::Atom& atom : query.body) {
    renamed.body.push_back(datalog::ApplySubstitution(atom, renaming));
  }
  return renamed;
}

}  // namespace

int main() {
  stats::WorkloadOptions wopts;
  wopts.query_length = 2;
  wopts.bucket_size = 4;
  wopts.overlap_rate = 0.3;
  wopts.regions_per_bucket = 8;
  wopts.seed = 21;
  auto domain = exec::BuildSyntheticDomain(wopts, /*num_answers=*/200);
  if (!domain.ok()) {
    std::printf("domain: %s\n", domain.status().ToString().c_str());
    return 1;
  }
  const exec::SyntheticDomain& d = **domain;
  std::printf("query: %s\n\n", d.query.ToString().c_str());

  service::ServiceOptions options;
  options.max_active_sessions = 2;
  options.admission_timeout_ms = 0.0;  // full = shed immediately (demo 3)
  service::QueryService service(&d.catalog, &d.source_facts, options);

  exec::Mediator::RunLimits limits;
  limits.max_plans = 8;

  // 1. Cold run, then an isomorphic variant: one canonical form, one miss.
  auto cold = service.RunQuery(d.query, limits);
  if (!cold.ok()) {
    std::printf("cold run: %s\n", cold.status().ToString().c_str());
    return 1;
  }
  const datalog::ConjunctiveQuery variant = RenameVariables(d.query, "_v2");
  auto hot = service.RunQuery(variant, limits);
  if (!hot.ok()) {
    std::printf("hot run: %s\n", hot.status().ToString().c_str());
    return 1;
  }
  std::printf("cold run:  %zu answers over %zu plans (cache miss)\n",
              cold->total_answers, cold->steps.size());
  std::printf("hot run:   %zu answers over %zu plans (isomorph, cache hit)\n",
              hot->total_answers, hot->steps.size());
  std::printf("identical traces: %s\n\n",
              cold->total_answers == hot->total_answers &&
                      cold->steps.size() == hot->steps.size()
                  ? "yes"
                  : "NO (bug!)");

  // 2. Streaming session: pull one plan at a time, stop when satisfied.
  auto session = service.OpenSession(d.query, limits);
  if (!session.ok()) {
    std::printf("session: %s\n", session.status().ToString().c_str());
    return 1;
  }
  std::printf("streaming session (stop once 60%% of answers are in):\n");
  while (true) {
    auto step = (*session)->NextStep();
    if (!step.ok()) break;
    std::printf("  plan utility=%.4f  +%zu answers (total %zu)\n",
                step->estimated_utility, step->new_answers,
                step->total_answers);
    if (step->total_answers * 10 >= cold->total_answers * 6) {
      std::printf("  satisfied early - closing the session\n");
      break;
    }
  }
  (*session)->Finish();
  std::printf("\n");

  // 3. Admission control: both slots held by open streaming sessions, so
  //    incoming clients with no queueing patience are shed immediately.
  auto held_a = service.OpenSession(d.query, limits);
  auto held_b = service.OpenSession(d.query, limits);
  if (!held_a.ok() || !held_b.ok()) {
    std::printf("holding sessions failed\n");
    return 1;
  }
  std::vector<std::thread> clients;
  std::vector<StatusCode> outcomes(5, StatusCode::kOk);
  for (int c = 0; c < 5; ++c) {
    clients.emplace_back([&service, &d, &limits, &outcomes, c] {
      auto result = service.RunQuery(d.query, limits);
      outcomes[size_t(c)] = result.status().code();
    });
  }
  for (std::thread& client : clients) client.join();
  (*held_a)->Finish();
  (*held_b)->Finish();
  int ok = 0;
  int shed = 0;
  for (StatusCode code : outcomes) {
    if (code == StatusCode::kOk) ++ok;
    if (code == StatusCode::kResourceExhausted) ++shed;
  }
  std::printf("admission: 5 clients while 2 sessions hold both slots -> "
              "%d served, %d shed (kResourceExhausted)\n\n", ok, shed);

  // 4. Service metrics.
  const service::ServiceMetricsSnapshot m = service.Metrics();
  std::printf("metrics:\n");
  std::printf("  sessions: %lld admitted, %lld completed, %lld shed\n",
              static_cast<long long>(m.sessions_admitted),
              static_cast<long long>(m.sessions_completed),
              static_cast<long long>(m.sessions_shed));
  std::printf("  cache:    %lld hits, %lld misses, %zu resident\n",
              static_cast<long long>(m.cache.hits),
              static_cast<long long>(m.cache.misses), m.cache.size);
  std::printf("  latency:  p50=%.2fms p95=%.2fms max=%.2fms over %zu runs\n",
              m.latency_p50_ms, m.latency_p95_ms, m.latency_max_ms,
              m.latency_count);
  return 0;
}
