// The "bring your own data" pipeline: no hand-written statistics at all.
//
//  1. declare schema + LAV sources, load their instances,
//  2. ESTIMATE the ordering statistics from the instances
//     (cardinalities per subgoal; coverage regions from binding
//     co-occurrence signatures — bindings held by the same set of sources
//     form a coverage cluster),
//  3. order plans by conditional coverage with Streamer and execute.
//
// The domain: two communities of publications. Sources cite-db-a/b cover
// community A (heavily overlapping), cite-db-c covers community B; review
// aggregators split the same way. Watch the ordering interleave one plan
// per community before bothering with redundant source combinations.
//
// Build & run:  cmake --build build && ./build/examples/estimated_stats

#include <cstdio>

#include "core/streamer.h"
#include "datalog/parser.h"
#include "exec/mediator.h"
#include "reformulation/bucket.h"
#include "reformulation/statistics.h"
#include "utility/coverage_model.h"

namespace {

using namespace planorder;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  datalog::Catalog catalog;
  if (Status s = catalog.schema().AddRelation("about", 2); !s.ok()) {
    return Fail(s);
  }
  if (Status s = catalog.schema().AddRelation("rated", 2); !s.ok()) {
    return Fail(s);
  }
  for (const char* text : {
           "cite-db-a(P,T) :- about(P,T)",
           "cite-db-b(P,T) :- about(P,T)",
           "cite-db-c(P,T) :- about(P,T)",
           "ratings-x(P,S) :- rated(P,S)",
           "ratings-y(P,S) :- rated(P,S)",
       }) {
    if (auto id = catalog.AddSourceFromText(text); !id.ok()) {
      return Fail(id.status());
    }
  }
  auto query = datalog::ParseRule("q(P,S) :- about(P,databases), rated(P,S)");
  if (!query.ok()) return Fail(query.status());

  // Instances: community A papers a0..a19 (in cite-db-a AND cite-db-b),
  // community B papers b0..b29 (cite-db-c only). Ratings split likewise,
  // with ratings-x covering community A plus a slice of B.
  datalog::Database facts;
  auto add = [&](const std::string& source, const std::string& x,
                 const std::string& y) {
    facts.AddFact(datalog::Atom(
        source, {datalog::Term::Constant(x), datalog::Term::Constant(y)}));
  };
  for (int i = 0; i < 20; ++i) {
    const std::string paper = "a" + std::to_string(i);
    add("cite-db-a", paper, "databases");
    add("cite-db-b", paper, "databases");
    add("ratings-x", paper, "s" + std::to_string(i % 5));
  }
  for (int i = 0; i < 30; ++i) {
    const std::string paper = "b" + std::to_string(i);
    add("cite-db-c", paper, "databases");
    add((i < 10) ? "ratings-x" : "ratings-y", paper,
        "s" + std::to_string(i % 5));
  }

  auto buckets = reformulation::BuildBuckets(*query, catalog);
  if (!buckets.ok()) return Fail(buckets.status());
  auto workload = reformulation::EstimateWorkloadFromInstances(
      *query, catalog, *buckets, facts);
  if (!workload.ok()) return Fail(workload.status());

  std::printf("estimated statistics:\n");
  for (size_t b = 0; b < buckets->buckets.size(); ++b) {
    for (size_t i = 0; i < buckets->buckets[b].size(); ++i) {
      const stats::SourceStats& s = workload->source(int(b), int(i));
      std::printf("  %-10s cardinality=%5.0f regions=0x%llx\n",
                  catalog.source(buckets->buckets[b][i]).name.c_str(),
                  s.cardinality,
                  static_cast<unsigned long long>(s.regions.bits));
    }
  }

  utility::CoverageModel model(&*workload);
  auto orderer = core::StreamerOrderer::Create(
      &*workload, &model, {core::PlanSpace::FullSpace(*workload)});
  if (!orderer.ok()) return Fail(orderer.status());

  std::vector<std::vector<datalog::SourceId>> source_ids;
  for (const auto& bucket : buckets->buckets) source_ids.push_back(bucket);
  exec::Mediator mediator(&catalog, *query, &facts, source_ids);
  auto result = mediator.Run(**orderer, 6);
  if (!result.ok()) return Fail(result.status());

  std::printf("\nplan stream (estimated conditional coverage):\n");
  for (size_t i = 0; i < result->steps.size(); ++i) {
    const exec::MediatorStep& step = result->steps[i];
    std::printf("%2zu. %-10s x %-9s est=%5.2f  +%zu new answers (cum %zu)\n",
                i + 1,
                catalog.source(buckets->buckets[0][step.plan[0]]).name.c_str(),
                catalog.source(buckets->buckets[1][step.plan[1]]).name.c_str(),
                step.estimated_utility, step.new_answers, step.total_answers);
  }
  std::printf("\n%zu of 50 rated papers found after %zu plans\n",
              result->total_answers, result->steps.size());
  return 0;
}
