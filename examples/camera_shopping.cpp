// The digital-camera shopping domain of Section 3 ("Source Similarity").
//
// Dozens of camera sellers fall into natural groups — discount resellers,
// specialized camera stores, national electronics chains, general-merchandise
// chains — and review sites split into free and paid. Similar sources can be
// abstracted and reasoned about as one, which is exactly what iDrips and
// Streamer exploit.
//
// This example builds a two-subgoal query (find a seller offering a camera
// and a review for it), materializes four seller groups x two review groups
// with distinct coverage/overlap behavior, and streams plans by conditional
// COVERAGE with Streamer: watch the first plans pair a big national chain
// with a free review site, and later plans chase the remaining niches.
//
// Build & run:  cmake --build build && ./build/examples/camera_shopping

#include <cstdio>
#include <string>

#include "core/streamer.h"
#include "utility/coverage_model.h"

namespace {

using namespace planorder;

struct SellerSpec {
  const char* name;
  int first_region;  // camera-catalog segment the group starts at
  int arc;           // how many segments it carries
  double tuples;
};

}  // namespace

int main() {
  // Bucket 0: sellers over a camera catalog partitioned into 16 segments
  // (entry-level ... professional). Groups cover characteristic segments.
  const SellerSpec sellers[] = {
      // Discount resellers: entry-level only, small catalogs.
      {"bargain-cam", 0, 3, 120}, {"deal-depot", 1, 3, 100},
      {"cheap-shots", 2, 3, 90},
      // General-merchandise chains: mid-range, no high end.
      {"target-ish", 3, 6, 400}, {"wallmart-ish", 4, 6, 450},
      {"costco-ish", 5, 5, 350},
      // National electronics chains: extensive offerings.
      {"best-buy-ish", 2, 11, 900}, {"circuit-city-ish", 3, 11, 850},
      // Specialized camera stores: the high end.
      {"pro-photo", 11, 5, 150}, {"lens-masters", 12, 4, 130},
  };
  // Bucket 1: review sites over the same 16 segments.
  const SellerSpec reviewers[] = {
      {"dpreview-ish (free)", 0, 12, 700},
      {"camera-blog (free)", 2, 9, 400},
      {"consumerreports-ish (paid)", 4, 12, 800},
      {"photo-mag (paid)", 10, 6, 200},
  };

  auto make_bucket = [](const SellerSpec* specs, size_t n) {
    std::vector<stats::SourceStats> bucket;
    for (size_t i = 0; i < n; ++i) {
      stats::SourceStats s;
      for (int r = 0; r < specs[i].arc; ++r) {
        s.regions.bits |= uint64_t{1} << ((specs[i].first_region + r) % 16);
      }
      s.cardinality = specs[i].tuples;
      s.transmission_cost = 0.2;
      bucket.push_back(s);
    }
    return bucket;
  };

  std::vector<std::vector<stats::SourceStats>> buckets = {
      make_bucket(sellers, std::size(sellers)),
      make_bucket(reviewers, std::size(reviewers))};
  std::vector<std::vector<double>> weights(2,
                                           std::vector<double>(16, 1.0 / 16));
  auto workload =
      stats::Workload::FromParts(buckets, weights, 5.0, {2000.0, 2000.0});
  if (!workload.ok()) {
    std::fprintf(stderr, "error: %s\n", workload.status().ToString().c_str());
    return 1;
  }

  utility::CoverageModel coverage(&*workload);
  auto streamer = core::StreamerOrderer::Create(
      &*workload, &coverage, {core::PlanSpace::FullSpace(*workload)});
  if (!streamer.ok()) {
    std::fprintf(stderr, "error: %s\n", streamer.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "plan stream by conditional coverage (seller x review site):\n\n");
  double cumulative = 0.0;
  int64_t first_plan_evals = 0;
  for (int rank = 1; rank <= 12; ++rank) {
    auto next = (*streamer)->Next();
    if (!next.ok()) break;
    if (rank == 1) first_plan_evals = (*streamer)->plan_evaluations();
    cumulative += next->utility;
    std::printf("%2d. %-18s x %-28s +%5.1f%% of answers (cum %5.1f%%)\n",
                rank, sellers[next->plan[0]].name,
                reviewers[next->plan[1]].name, 100.0 * next->utility,
                100.0 * cumulative);
  }
  std::printf(
      "\nbest plan found after %lld evaluations (of %d concrete plans); the "
      "first six plans already cover every answer the %d plans can return\n",
      static_cast<long long>(first_plan_evals),
      static_cast<int>(std::size(sellers) * std::size(reviewers)),
      static_cast<int>(std::size(sellers) * std::size(reviewers)));
  return 0;
}
