#include <gtest/gtest.h>

#include "exec/mediator.h"

namespace planorder::exec {
namespace {

RuntimeAccounting Sample(int64_t scale, double latency) {
  RuntimeAccounting a;
  a.retries = 1 * scale;
  a.transient_failures = 2 * scale;
  a.deadline_timeouts = 3 * scale;
  a.permanent_failures = 4 * scale;
  a.hedged_calls = 5 * scale;
  a.latency_ms_total = latency;
  a.latency_ms_max = latency / 2.0;
  return a;
}

TEST(RuntimeAccountingTest, MergeSumsCountersAndMaxesLatencyPeak) {
  RuntimeAccounting a = Sample(1, 10.0);
  const RuntimeAccounting b = Sample(10, 4.0);
  a.Merge(b);
  EXPECT_EQ(a.retries, 11);
  EXPECT_EQ(a.transient_failures, 22);
  EXPECT_EQ(a.deadline_timeouts, 33);
  EXPECT_EQ(a.permanent_failures, 44);
  EXPECT_EQ(a.hedged_calls, 55);
  EXPECT_DOUBLE_EQ(a.latency_ms_total, 14.0);
  // Peak is a max, not a sum: 10/2 dominates 4/2.
  EXPECT_DOUBLE_EQ(a.latency_ms_max, 5.0);
}

TEST(RuntimeAccountingTest, ResetZeroesEverything) {
  RuntimeAccounting a = Sample(7, 100.0);
  a.Reset();
  EXPECT_EQ(a.retries, 0);
  EXPECT_EQ(a.transient_failures, 0);
  EXPECT_EQ(a.deadline_timeouts, 0);
  EXPECT_EQ(a.permanent_failures, 0);
  EXPECT_EQ(a.hedged_calls, 0);
  EXPECT_DOUBLE_EQ(a.latency_ms_total, 0.0);
  EXPECT_DOUBLE_EQ(a.latency_ms_max, 0.0);
}

TEST(RuntimeAccountingTest, SnapshotDiffRoundTrip) {
  // The service-layer pattern: snapshot a monotone accumulator before a
  // session, merge more work in, diff after — the diff is the new work.
  const RuntimeAccounting baseline = Sample(3, 30.0);
  RuntimeAccounting accumulator = baseline;
  const RuntimeAccounting session_work = Sample(2, 20.0);
  accumulator.Merge(session_work);

  const RuntimeAccounting delta = accumulator.Since(baseline);
  EXPECT_EQ(delta.retries, session_work.retries);
  EXPECT_EQ(delta.transient_failures, session_work.transient_failures);
  EXPECT_EQ(delta.deadline_timeouts, session_work.deadline_timeouts);
  EXPECT_EQ(delta.permanent_failures, session_work.permanent_failures);
  EXPECT_EQ(delta.hedged_calls, session_work.hedged_calls);
  EXPECT_DOUBLE_EQ(delta.latency_ms_total, session_work.latency_ms_total);
  // The peak is not invertible; the diff carries the accumulator's peak,
  // which upper-bounds the window's true peak.
  EXPECT_DOUBLE_EQ(delta.latency_ms_max, accumulator.latency_ms_max);
  EXPECT_GE(delta.latency_ms_max, session_work.latency_ms_max);
}

TEST(RuntimeAccountingTest, SinceSelfIsZeroWork) {
  const RuntimeAccounting a = Sample(5, 50.0);
  const RuntimeAccounting delta = a.Since(a);
  EXPECT_EQ(delta.retries, 0);
  EXPECT_EQ(delta.transient_failures, 0);
  EXPECT_EQ(delta.deadline_timeouts, 0);
  EXPECT_EQ(delta.permanent_failures, 0);
  EXPECT_EQ(delta.hedged_calls, 0);
  EXPECT_DOUBLE_EQ(delta.latency_ms_total, 0.0);
}

}  // namespace
}  // namespace planorder::exec
