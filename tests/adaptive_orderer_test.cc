#include "adaptive/adaptive_orderer.h"

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/idrips.h"
#include "core/plan_space.h"
#include "stats/workload.h"
#include "utility/measures.h"

namespace planorder::adaptive {
namespace {

stats::Workload MakeWorkload(uint64_t seed = 5) {
  stats::WorkloadOptions options;
  options.query_length = 2;
  options.bucket_size = 3;
  options.regions_per_bucket = 8;
  options.seed = seed;
  auto workload = stats::Workload::Generate(options);
  EXPECT_TRUE(workload.ok()) << workload.status();
  return std::move(*workload);
}

std::vector<std::vector<std::string>> Names(const stats::Workload& workload) {
  std::vector<std::vector<std::string>> names(
      size_t(workload.num_buckets()));
  for (int b = 0; b < workload.num_buckets(); ++b) {
    for (int i = 0; i < workload.bucket_size(b); ++i) {
      names[size_t(b)].push_back("b" + std::to_string(b) + "_s" +
                                 std::to_string(i));
    }
  }
  return names;
}

StatusOr<std::vector<core::OrderedPlan>> DrainAll(core::Orderer& orderer) {
  std::vector<core::OrderedPlan> emissions;
  while (true) {
    StatusOr<core::OrderedPlan> next = orderer.Next();
    if (!next.ok()) {
      if (next.status().code() == StatusCode::kNotFound) break;
      return next.status();
    }
    emissions.push_back(*next);
  }
  return emissions;
}

/// One observed call per source of `plan`, shipping `cardinality(b, i) *
/// factor(b, i)` rows.
template <typename CardFn>
void Observe(const std::vector<std::vector<std::string>>& names,
             const core::ConcretePlan& plan, CardFn card, ObservedStats& obs) {
  for (size_t b = 0; b < plan.size(); ++b) {
    runtime::SourceObservation o;
    o.rows = std::llround(card(int(b), plan[b]));
    o.attempts = 1;
    o.failures = 0;
    o.latency_micros = 1000;
    o.call_failed = false;
    obs.RecordFetch(names[b][size_t(plan[b])], o);
  }
  obs.FoldWindow();
}

TEST(PreloadExecutedTest, RejectedAfterTheFirstNext) {
  const stats::Workload workload = MakeWorkload();
  auto model = utility::MakeMeasure(utility::MeasureKind::kAdditive,
                                    &workload);
  ASSERT_TRUE(model.ok());
  auto orderer = core::IDripsOrderer::Create(
      &workload, model->get(), {core::PlanSpace::FullSpace(workload)},
      core::IDripsOptions{});
  ASSERT_TRUE(orderer.ok()) << orderer.status();

  EXPECT_TRUE((*orderer)->PreloadExecuted({0, 0}).ok());
  ASSERT_TRUE((*orderer)->Next().ok());
  Status late = (*orderer)->PreloadExecuted({1, 1});
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.code(), StatusCode::kFailedPrecondition);
}

TEST(PreloadExecutedTest, PreloadEqualsLiveExecutionConditioning) {
  // Orderer A: emit the best plan live, then drain. Orderer B: preload that
  // plan, then drain. B's stream must equal A's tail bit for bit — preload
  // conditions exactly like a live emission.
  const stats::Workload workload = MakeWorkload();
  auto model_a = utility::MakeMeasure(utility::MeasureKind::kCost2, &workload);
  ASSERT_TRUE(model_a.ok());
  auto a = core::IDripsOrderer::Create(
      &workload, model_a->get(), {core::PlanSpace::FullSpace(workload)},
      core::IDripsOptions{});
  ASSERT_TRUE(a.ok());
  auto first = (*a)->Next();
  ASSERT_TRUE(first.ok());
  auto tail = DrainAll(**a);
  ASSERT_TRUE(tail.ok());

  auto model_b = utility::MakeMeasure(utility::MeasureKind::kCost2, &workload);
  ASSERT_TRUE(model_b.ok());
  auto b = core::IDripsOrderer::Create(
      &workload, model_b->get(), {core::PlanSpace::FullSpace(workload)},
      core::IDripsOptions{});
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*b)->PreloadExecuted(first->plan).ok());

  // The preloaded plan is still in the space and will re-surface; callers
  // replacing an orderer mid-stream filter it — do the same here.
  std::vector<core::OrderedPlan> replay;
  while (true) {
    auto next = (*b)->Next();
    if (!next.ok()) break;
    if (next->plan == first->plan) {
      (*b)->ReportDiscarded();
      continue;
    }
    replay.push_back(*next);
  }
  ASSERT_EQ(replay.size(), tail->size());
  for (size_t i = 0; i < replay.size(); ++i) {
    EXPECT_EQ(replay[i].plan, (*tail)[i].plan) << "step " << i;
    EXPECT_EQ(replay[i].utility, (*tail)[i].utility) << "step " << i;
  }
}

TEST(AdaptiveOrdererTest, NoObservationsMatchesPlainIDripsExactly) {
  const stats::Workload workload = MakeWorkload();
  auto model = utility::MakeMeasure(utility::MeasureKind::kAdditive,
                                    &workload);
  ASSERT_TRUE(model.ok());
  auto plain = core::IDripsOrderer::Create(
      &workload, model->get(), {core::PlanSpace::FullSpace(workload)},
      core::IDripsOptions{});
  ASSERT_TRUE(plain.ok());
  auto want = DrainAll(**plain);
  ASSERT_TRUE(want.ok());

  AdaptiveOptions options;
  auto adaptive = AdaptiveOrderer::Create(&workload, Names(workload),
                                          /*observed=*/nullptr, options);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status();
  auto got = DrainAll(**adaptive);
  ASSERT_TRUE(got.ok());

  ASSERT_EQ(got->size(), want->size());
  for (size_t i = 0; i < got->size(); ++i) {
    EXPECT_EQ((*got)[i].plan, (*want)[i].plan) << "step " << i;
    EXPECT_EQ((*got)[i].utility, (*want)[i].utility) << "step " << i;
  }
  EXPECT_EQ((*adaptive)->rebuilds(), 0);
}

TEST(AdaptiveOrdererTest, InBandObservationsNeverTriggerARebuild) {
  const stats::Workload workload = MakeWorkload();
  const auto names = Names(workload);
  ObservedStats observed;
  AdaptiveOptions options;
  options.drift.band = 1e6;  // everything is in band
  auto adaptive =
      AdaptiveOrderer::Create(&workload, names, &observed, options);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status();

  while (true) {
    auto next = (*adaptive)->Next();
    if (!next.ok()) break;
    Observe(
        names, next->plan,
        [&](int b, int i) { return workload.source(b, i).cardinality; },
        observed);
  }
  EXPECT_EQ((*adaptive)->rebuilds(), 0);
}

TEST(AdaptiveOrdererTest, OutOfBandDriftRebuildsAndStillEmitsEveryPlanOnce) {
  const stats::Workload workload = MakeWorkload();
  const auto names = Names(workload);
  ObservedStats observed;
  AdaptiveOptions options;
  options.drift.band = 2.0;
  auto adaptive =
      AdaptiveOrderer::Create(&workload, names, &observed, options);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status();

  std::set<core::ConcretePlan> seen;
  size_t emissions = 0;
  while (true) {
    auto next = (*adaptive)->Next();
    if (!next.ok()) {
      EXPECT_EQ(next.status().code(), StatusCode::kNotFound);
      break;
    }
    ++emissions;
    EXPECT_TRUE(seen.insert(next->plan).second)
        << "plan re-emitted after a rebuild";
    // Every source observed at 10x its estimated cardinality: far outside
    // the band from the very first fold.
    Observe(
        names, next->plan,
        [&](int b, int i) { return workload.source(b, i).cardinality * 10.0; },
        observed);
  }
  const core::PlanSpace full = core::PlanSpace::FullSpace(workload);
  EXPECT_EQ(emissions, size_t(full.NumPlans()));
  EXPECT_GE((*adaptive)->rebuilds(), 1);
  // The blended statistics the last generation ranked by reflect the drift.
  EXPECT_NE((*adaptive)->current_workload().source(0, 0).cardinality,
            workload.source(0, 0).cardinality);
}

TEST(AdaptiveOrdererTest, StaleHookSuppressesEveryRebuild) {
  // The planted bug the sim's check_drift property exists to catch: with
  // react_to_observations cleared the orderer must keep its initial ranking
  // no matter how far the observations drift.
  const stats::Workload workload = MakeWorkload();
  const auto names = Names(workload);

  auto run = [&](bool react) -> std::pair<std::vector<core::OrderedPlan>,
                                          int64_t> {
    ObservedStats observed;
    AdaptiveOptions options;
    options.drift.band = 1.5;
    options.drift.react_to_observations = react;
    auto adaptive =
        AdaptiveOrderer::Create(&workload, names, &observed, options);
    EXPECT_TRUE(adaptive.ok());
    std::vector<core::OrderedPlan> emissions;
    while (true) {
      auto next = (*adaptive)->Next();
      if (!next.ok()) break;
      Observe(
          names, next->plan,
          [&](int b, int i) {
            return workload.source(b, i).cardinality * 20.0;
          },
          observed);
      emissions.push_back(*next);
    }
    return {emissions, (*adaptive)->rebuilds()};
  };

  const auto [stale, stale_rebuilds] = run(false);
  EXPECT_EQ(stale_rebuilds, 0);
  const auto [reactive, reactive_rebuilds] = run(true);
  EXPECT_GE(reactive_rebuilds, 1);

  // And the stale run equals the never-observed ordering (it ignored the
  // drift entirely).
  AdaptiveOptions options;
  auto blind = AdaptiveOrderer::Create(&workload, names, nullptr, options);
  ASSERT_TRUE(blind.ok());
  auto want = DrainAll(**blind);
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(stale.size(), want->size());
  for (size_t i = 0; i < stale.size(); ++i) {
    EXPECT_EQ(stale[i].plan, (*want)[i].plan) << "step " << i;
    EXPECT_EQ(stale[i].utility, (*want)[i].utility) << "step " << i;
  }
}

TEST(AdaptiveOrdererTest, DiscardedEmissionsDoNotCondition) {
  // Discard-everything through the adaptive wrapper must equal
  // discard-everything through plain IDrips: every emission is evaluated
  // against the empty executed prefix.
  const stats::Workload workload = MakeWorkload();
  auto model = utility::MakeMeasure(utility::MeasureKind::kAdditive,
                                    &workload);
  ASSERT_TRUE(model.ok());
  auto plain = core::IDripsOrderer::Create(
      &workload, model->get(), {core::PlanSpace::FullSpace(workload)},
      core::IDripsOptions{});
  ASSERT_TRUE(plain.ok());
  std::vector<core::OrderedPlan> want;
  while (true) {
    auto next = (*plain)->Next();
    if (!next.ok()) break;
    want.push_back(*next);
    (*plain)->ReportDiscarded();
  }

  AdaptiveOptions options;
  auto adaptive = AdaptiveOrderer::Create(&workload, Names(workload), nullptr,
                                          options);
  ASSERT_TRUE(adaptive.ok());
  std::vector<core::OrderedPlan> got;
  while (true) {
    auto next = (*adaptive)->Next();
    if (!next.ok()) break;
    got.push_back(*next);
    (*adaptive)->ReportDiscarded();
  }
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].plan, want[i].plan) << "step " << i;
    EXPECT_EQ(got[i].utility, want[i].utility) << "step " << i;
  }
}

TEST(AdaptiveOrdererTest, ExternalResidencyForwardsThroughRebuilds) {
  // Mark an operation externally cached before any emission; under a
  // caching measure the adaptive run must match a plain IDrips run given the
  // same residency — and keep matching emission counts after drift-induced
  // rebuilds (the bits are replayed into each fresh inner orderer).
  const stats::Workload workload = MakeWorkload();
  const auto names = Names(workload);

  auto model = utility::MakeMeasure(utility::MeasureKind::kFailureCache,
                                    &workload);
  ASSERT_TRUE(model.ok());
  auto plain = core::IDripsOrderer::Create(
      &workload, model->get(), {core::PlanSpace::FullSpace(workload)},
      core::IDripsOptions{});
  ASSERT_TRUE(plain.ok());
  (*plain)->SetExternallyCached(0, 1, true);
  auto want = DrainAll(**plain);
  ASSERT_TRUE(want.ok());

  AdaptiveOptions options;
  options.measure = utility::MeasureKind::kFailureCache;
  auto adaptive =
      AdaptiveOrderer::Create(&workload, names, nullptr, options);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status();
  (*adaptive)->SetExternallyCached(0, 1, true);
  auto got = DrainAll(**adaptive);
  ASSERT_TRUE(got.ok());

  ASSERT_EQ(got->size(), want->size());
  for (size_t i = 0; i < got->size(); ++i) {
    EXPECT_EQ((*got)[i].plan, (*want)[i].plan) << "step " << i;
    EXPECT_EQ((*got)[i].utility, (*want)[i].utility) << "step " << i;
  }
}

TEST(AdaptiveOrdererTest, RejectsMalformedNameGrids) {
  const stats::Workload workload = MakeWorkload();
  AdaptiveOptions options;
  EXPECT_FALSE(AdaptiveOrderer::Create(&workload, {}, nullptr, options).ok());
  EXPECT_FALSE(
      AdaptiveOrderer::Create(&workload, {{"a"}, {"b"}}, nullptr, options)
          .ok());
  EXPECT_FALSE(AdaptiveOrderer::Create(nullptr, {}, nullptr, options).ok());
}

}  // namespace
}  // namespace planorder::adaptive
