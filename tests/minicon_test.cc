#include "reformulation/minicon.h"

#include <set>

#include <gtest/gtest.h>

#include "datalog/containment.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"

namespace planorder::reformulation {
namespace {

using datalog::Catalog;
using datalog::ConjunctiveQuery;
using datalog::ParseAtom;
using datalog::ParseRule;

Catalog MovieCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog.schema().AddRelation("play-in", 2).ok());
  EXPECT_TRUE(catalog.schema().AddRelation("review-of", 2).ok());
  EXPECT_TRUE(catalog.schema().AddRelation("american", 1).ok());
  for (const char* text : {
           "v1(A,M) :- play-in(A,M), american(M)",
           "v3(A,M) :- play-in(A,M)",
           "v4(R,M) :- review-of(R,M)",
           "v5(R,M) :- review-of(R,M)",
       }) {
    EXPECT_TRUE(catalog.AddSourceFromText(text).ok());
  }
  return catalog;
}

ConjunctiveQuery MovieQuery() {
  auto q = ParseRule("q(M,R) :- play-in(ford,M), review-of(R,M)");
  EXPECT_TRUE(q.ok());
  return *q;
}

TEST(FormMcdsTest, MovieDomainSingleSubgoalMcds) {
  Catalog catalog = MovieCatalog();
  auto mcds = FormMcds(MovieQuery(), catalog);
  ASSERT_TRUE(mcds.ok()) << mcds.status();
  // v1 and v3 cover subgoal 0; v4 and v5 cover subgoal 1. All join variables
  // are distinguished in the views, so every MCD covers one subgoal.
  ASSERT_EQ(mcds->size(), 4u);
  int covering_first = 0, covering_second = 0;
  for (const Mcd& mcd : *mcds) {
    EXPECT_EQ(mcd.num_subgoals(), 1);
    if (mcd.subgoals == 0b01) ++covering_first;
    if (mcd.subgoals == 0b10) ++covering_second;
  }
  EXPECT_EQ(covering_first, 2);
  EXPECT_EQ(covering_second, 2);
}

TEST(FormMcdsTest, ExistentialJoinVariableForcesMultiSubgoalMcd) {
  // View w(A,C) :- p(A,B), r(B,C): B is existential in the view, so an MCD
  // touching p must also cover r (property C2).
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  ASSERT_TRUE(catalog.schema().AddRelation("r", 2).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("w(A,C) :- p(A,B), r(B,C)").ok());
  auto q = ParseRule("q(A,C) :- p(A,B), r(B,C)");
  ASSERT_TRUE(q.ok());
  auto mcds = FormMcds(*q, catalog);
  ASSERT_TRUE(mcds.ok());
  ASSERT_EQ(mcds->size(), 1u);
  EXPECT_EQ((*mcds)[0].subgoals, 0b11u);
}

TEST(FormMcdsTest, DistinguishedVariableOnExistentialViewVarRejected) {
  // Query exports B, but the only source projects it away: no MCD at all.
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v(A) :- p(A,B)").ok());
  auto q = ParseRule("q(A,B) :- p(A,B)");
  ASSERT_TRUE(q.ok());
  auto mcds = FormMcds(*q, catalog);
  ASSERT_TRUE(mcds.ok());
  EXPECT_TRUE(mcds->empty());
}

TEST(FormMcdsTest, ExistentialQueryVariableAllowsProjection) {
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v(A) :- p(A,B)").ok());
  auto q = ParseRule("q(A) :- p(A,B)");
  ASSERT_TRUE(q.ok());
  auto mcds = FormMcds(*q, catalog);
  ASSERT_TRUE(mcds.ok());
  ASSERT_EQ(mcds->size(), 1u);
}

TEST(GroupAndPartitionTest, MovieDomainSpaces) {
  Catalog catalog = MovieCatalog();
  const ConjunctiveQuery query = MovieQuery();
  auto mcds = FormMcds(query, catalog);
  ASSERT_TRUE(mcds.ok());
  const auto buckets = GroupMcds(*mcds);
  ASSERT_EQ(buckets.size(), 2u);  // {subgoal 0}, {subgoal 1}
  const auto spaces = BuildMcdPlanSpaces(query, buckets);
  ASSERT_EQ(spaces.size(), 1u);
  EXPECT_EQ(spaces[0].bucket_indices.size(), 2u);
}

TEST(GroupAndPartitionTest, MixedCoveragePartitions) {
  // One source covers both subgoals at once, two cover one each: the
  // partitions are {both} and {first}+{second}.
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  ASSERT_TRUE(catalog.schema().AddRelation("r", 2).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("w(A,C) :- p(A,B), r(B,C)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vp(A,B) :- p(A,B)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vr(B,C) :- r(B,C)").ok());
  auto q = ParseRule("q(A,C) :- p(A,B), r(B,C)");
  ASSERT_TRUE(q.ok());
  auto mcds = FormMcds(*q, catalog);
  ASSERT_TRUE(mcds.ok());
  const auto buckets = GroupMcds(*mcds);
  const auto spaces = BuildMcdPlanSpaces(*q, buckets);
  EXPECT_EQ(spaces.size(), 2u);
}

TEST(EnumerateMiniConPlansTest, MovieDomainMatchesBucketPlans) {
  Catalog catalog = MovieCatalog();
  const ConjunctiveQuery query = MovieQuery();
  auto minicon = EnumerateMiniConPlans(query, catalog);
  ASSERT_TRUE(minicon.ok()) << minicon.status();
  auto bucket = EnumerateSoundPlans(query, catalog);
  ASSERT_TRUE(bucket.ok());
  ASSERT_EQ(minicon->size(), bucket->size());  // 2 x 2 = 4
  // Every bucket plan is equivalent to some MiniCon plan (via expansions).
  for (const QueryPlan& bp : *bucket) {
    auto bexp = ExpandPlan(bp, catalog);
    ASSERT_TRUE(bexp.ok());
    bool found = false;
    for (const QueryPlan& mp : *minicon) {
      auto mexp = ExpandPlan(mp, catalog);
      ASSERT_TRUE(mexp.ok());
      if (datalog::AreEquivalent(*bexp, *mexp)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << bp.rewriting.ToString();
  }
}

TEST(EnumerateMiniConPlansTest, FindsPlanTheNaiveBucketCombinationMisses) {
  // The MiniCon paper's motivating case: with w(A,C) :- p(A,B), r(B,C), the
  // sound single-atom rewriting q(A,C) :- w(A,C) exists, but the naive
  // bucket combination (one independently-unified atom per subgoal) cannot
  // assemble it.
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  ASSERT_TRUE(catalog.schema().AddRelation("r", 2).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("w(A,C) :- p(A,B), r(B,C)").ok());
  auto q = ParseRule("q(A,C) :- p(A,B), r(B,C)");
  ASSERT_TRUE(q.ok());

  auto minicon = EnumerateMiniConPlans(*q, catalog);
  ASSERT_TRUE(minicon.ok()) << minicon.status();
  ASSERT_EQ(minicon->size(), 1u);
  EXPECT_EQ((*minicon)[0].rewriting.body.size(), 1u);
  EXPECT_EQ((*minicon)[0].rewriting.body[0].predicate, "w");

  auto bucket = EnumerateSoundPlans(*q, catalog);
  ASSERT_TRUE(bucket.ok());
  EXPECT_TRUE(bucket->empty());
}

TEST(EnumerateMiniConPlansTest, AnswersAreAlwaysQueryAnswers) {
  // Instance-level soundness across every MiniCon plan.
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  ASSERT_TRUE(catalog.schema().AddRelation("r", 2).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("w(A,C) :- p(A,B), r(B,C)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vp(A,B) :- p(A,B)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vr(B,C) :- r(B,C)").ok());
  auto q = ParseRule("q(A,C) :- p(A,B), r(B,C)");
  ASSERT_TRUE(q.ok());

  datalog::Database schema_db;
  auto add = [&](const char* text) {
    auto atom = ParseAtom(text);
    ASSERT_TRUE(atom.ok());
    schema_db.AddFact(*atom);
  };
  add("p(a, b1)");
  add("p(a, b2)");
  add("r(b1, c1)");
  add("r(b2, c2)");
  add("r(bx, cx)");

  datalog::Database source_db;
  for (datalog::SourceId id = 0; id < catalog.num_sources(); ++id) {
    auto tuples = datalog::EvaluateQuery(catalog.source(id).view, schema_db);
    ASSERT_TRUE(tuples.ok());
    for (const auto& tuple : *tuples) {
      source_db.AddFact(datalog::Atom(catalog.source(id).name, tuple));
    }
  }
  auto query_answers = datalog::EvaluateQuery(*q, schema_db);
  ASSERT_TRUE(query_answers.ok());
  std::set<std::vector<datalog::Term>> answers(query_answers->begin(),
                                               query_answers->end());

  auto minicon = EnumerateMiniConPlans(*q, catalog);
  ASSERT_TRUE(minicon.ok());
  ASSERT_FALSE(minicon->empty());
  std::set<std::vector<datalog::Term>> union_of_plans;
  for (const QueryPlan& plan : *minicon) {
    auto tuples = datalog::EvaluateQuery(plan.rewriting, source_db);
    ASSERT_TRUE(tuples.ok());
    for (const auto& tuple : *tuples) {
      EXPECT_TRUE(answers.contains(tuple))
          << "unsound: " << plan.rewriting.ToString();
      union_of_plans.insert(tuple);
    }
  }
  EXPECT_EQ(union_of_plans, answers);  // complete sources recover everything
}

TEST(CombineMcdsTest, RejectsOverlapAndGaps) {
  Catalog catalog = MovieCatalog();
  const ConjunctiveQuery query = MovieQuery();
  auto mcds = FormMcds(query, catalog);
  ASSERT_TRUE(mcds.ok());
  const Mcd* first = nullptr;
  for (const Mcd& mcd : *mcds) {
    if (mcd.subgoals == 0b01) {
      first = &mcd;
      break;
    }
  }
  ASSERT_NE(first, nullptr);
  // Gap: only subgoal 0 covered.
  EXPECT_FALSE(CombineMcds(query, catalog, {first}).ok());
  // Overlap: same subgoal twice.
  EXPECT_FALSE(CombineMcds(query, catalog, {first, first}).ok());
}

}  // namespace
}  // namespace planorder::reformulation
