#include "datalog/term.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "datalog/atom.h"

namespace planorder::datalog {
namespace {

TEST(TermTest, Kinds) {
  EXPECT_TRUE(Term::Variable("X").is_variable());
  EXPECT_TRUE(Term::Constant("ford").is_constant());
  EXPECT_TRUE(Term::Function("f", {Term::Variable("X")}).is_function());
  EXPECT_TRUE(Term().is_constant());  // default
}

TEST(TermTest, Groundness) {
  EXPECT_FALSE(Term::Variable("X").IsGround());
  EXPECT_TRUE(Term::Constant("a").IsGround());
  EXPECT_TRUE(Term::Function("f", {Term::Constant("a")}).IsGround());
  EXPECT_FALSE(Term::Function("f", {Term::Variable("X")}).IsGround());
  EXPECT_FALSE(
      Term::Function("f", {Term::Function("g", {Term::Variable("X")})})
          .IsGround());
}

TEST(TermTest, ToString) {
  EXPECT_EQ(Term::Variable("Movie").ToString(), "Movie");
  EXPECT_EQ(Term::Constant("ford").ToString(), "ford");
  EXPECT_EQ(Term::Constant("play-in").ToString(), "play-in");
  EXPECT_EQ(Term::Constant("Harrison Ford").ToString(), "'Harrison Ford'");
  EXPECT_EQ(Term::Constant("").ToString(), "''");
  EXPECT_EQ(
      Term::Function("f_V1_Z", {Term::Constant("a"), Term::Variable("X")})
          .ToString(),
      "f_V1_Z(a,X)");
}

TEST(TermTest, EqualityDistinguishesKinds) {
  EXPECT_EQ(Term::Variable("X"), Term::Variable("X"));
  EXPECT_NE(Term::Variable("X"), Term::Constant("X"));
  EXPECT_NE(Term::Variable("X"), Term::Variable("Y"));
  EXPECT_EQ(Term::Function("f", {Term::Constant("a")}),
            Term::Function("f", {Term::Constant("a")}));
  EXPECT_NE(Term::Function("f", {Term::Constant("a")}),
            Term::Function("f", {Term::Constant("b")}));
}

TEST(TermTest, OrderingIsTotal) {
  Term a = Term::Constant("a");
  Term b = Term::Constant("b");
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a < a);
}

TEST(TermTest, HashingConsistentWithEquality) {
  TermHash hash;
  EXPECT_EQ(hash(Term::Constant("a")), hash(Term::Constant("a")));
  EXPECT_NE(hash(Term::Constant("a")), hash(Term::Variable("a")));
  std::unordered_set<Term, TermHash> set;
  set.insert(Term::Constant("a"));
  set.insert(Term::Constant("a"));
  set.insert(Term::Constant("b"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(AtomTest, BasicsAndVariables) {
  Atom atom("play-in", {Term::Constant("ford"), Term::Variable("M")});
  EXPECT_EQ(atom.arity(), 2u);
  EXPECT_FALSE(atom.IsGround());
  EXPECT_EQ(atom.ToString(), "play-in(ford,M)");
  std::set<std::string> vars;
  atom.CollectVariables(vars);
  EXPECT_EQ(vars, std::set<std::string>{"M"});
}

TEST(AtomTest, VariablesInsideFunctionTerms) {
  Atom atom("p", {Term::Function("f", {Term::Variable("X"),
                                       Term::Function("g", {Term::Variable("Y")})})});
  std::set<std::string> vars;
  atom.CollectVariables(vars);
  EXPECT_EQ(vars, (std::set<std::string>{"X", "Y"}));
}

TEST(AtomTest, EqualityAndOrdering) {
  Atom a("p", {Term::Constant("a")});
  Atom b("p", {Term::Constant("b")});
  Atom q("q", {Term::Constant("a")});
  EXPECT_EQ(a, a);
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a < q);
}

}  // namespace
}  // namespace planorder::datalog
