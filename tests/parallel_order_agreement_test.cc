// Determinism contract of the parallel ordering core (DESIGN.md §6): with a
// thread pool injected, every orderer must emit exactly the same (plan,
// utility) sequence — and perform exactly the same number of utility
// evaluations — as its serial run. Also checks the persistent iDrips
// frontier's incremental claim: strictly fewer evaluations than the
// rebuild-every-emission mode on a conditional measure.
#include <gtest/gtest.h>

#include "runtime/thread_pool.h"
#include "test_util.h"

namespace planorder::core {
namespace {

using test::Drain;
using test::MakeWorkload;
using test::Measure;
using test::MustMakeMeasure;

enum class Algo { kGreedy, kIDrips, kStreamer };

const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kGreedy:
      return "greedy";
    case Algo::kIDrips:
      return "idrips";
    case Algo::kStreamer:
      return "streamer";
  }
  return "?";
}

StatusOr<std::unique_ptr<Orderer>> Make(Algo algo, const stats::Workload* w,
                                        utility::UtilityModel* m,
                                        bool probes) {
  std::vector<PlanSpace> spaces = {PlanSpace::FullSpace(*w)};
  switch (algo) {
    case Algo::kGreedy: {
      PLANORDER_ASSIGN_OR_RETURN(auto o,
                                 GreedyOrderer::Create(w, m, std::move(spaces)));
      return std::unique_ptr<Orderer>(std::move(o));
    }
    case Algo::kIDrips: {
      PLANORDER_ASSIGN_OR_RETURN(
          auto o, IDripsOrderer::Create(w, m, std::move(spaces),
                                        AbstractionHeuristic::kByCardinality,
                                        probes));
      return std::unique_ptr<Orderer>(std::move(o));
    }
    case Algo::kStreamer: {
      PLANORDER_ASSIGN_OR_RETURN(
          auto o, StreamerOrderer::Create(w, m, std::move(spaces),
                                          AbstractionHeuristic::kByCardinality,
                                          probes));
      return std::unique_ptr<Orderer>(std::move(o));
    }
  }
  return InternalError("unreachable");
}

bool Applicable(Algo algo, const utility::UtilityModel& model) {
  switch (algo) {
    case Algo::kGreedy:
      return model.fully_monotonic();
    case Algo::kStreamer:
      return model.diminishing_returns();
    case Algo::kIDrips:
      return true;
  }
  return false;
}

class ParallelAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelAgreementTest, PoolDoesNotChangeEmissionsOrEvaluationCounts) {
  test::SeededScenario scenario("parallel_order_agreement_test", GetParam());
  const stats::Workload w = MakeWorkload(3, 6, 0.4, scenario.seed());
  runtime::ThreadPool pool(4);
  // The Section-6 measures plus the two fully monotonic ones so Greedy is
  // exercised; inapplicable (measure, algorithm) pairs are skipped.
  for (Measure measure :
       {Measure::kAdditive, Measure::kCost2UniformAlpha,
        Measure::kFailureNoCache, Measure::kFailureCache, Measure::kMonetary,
        Measure::kCoverage}) {
    for (Algo algo : {Algo::kGreedy, Algo::kIDrips, Algo::kStreamer}) {
      for (bool probes : {false, true}) {
        if (algo == Algo::kGreedy && probes) continue;  // Greedy never probes
        // Some measures reject some generated workloads (e.g. uniform-alpha
        // cost over varying transmission costs); skip those combinations.
        auto maybe_serial = utility::MakeMeasure(measure, &w);
        auto maybe_parallel = utility::MakeMeasure(measure, &w);
        if (!maybe_serial.ok() || !maybe_parallel.ok()) continue;
        std::unique_ptr<utility::UtilityModel> serial_model =
            std::move(*maybe_serial);
        std::unique_ptr<utility::UtilityModel> parallel_model =
            std::move(*maybe_parallel);
        if (!Applicable(algo, *serial_model)) continue;
        SCOPED_TRACE(std::string(AlgoName(algo)) + "/" +
                     test::MeasureName(measure) +
                     (probes ? "/probes" : "/plain"));
        auto serial = Make(algo, &w, serial_model.get(), probes);
        ASSERT_TRUE(serial.ok()) << serial.status();
        auto parallel = Make(algo, &w, parallel_model.get(), probes);
        ASSERT_TRUE(parallel.ok()) << parallel.status();
        (*parallel)->set_eval_pool(&pool);

        const std::vector<OrderedPlan> a = Drain(**serial);
        const std::vector<OrderedPlan> b = Drain(**parallel);
        ASSERT_EQ(a.size(), b.size());
        ASSERT_GT(a.size(), 0u);
        for (size_t i = 0; i < a.size(); ++i) {
          EXPECT_EQ(a[i].plan, b[i].plan) << "emission " << i;
          // Byte-identical, not just close: parallelism must not reassociate
          // any arithmetic.
          EXPECT_EQ(a[i].utility, b[i].utility) << "emission " << i;
        }
        EXPECT_EQ((*serial)->plan_evaluations(),
                  (*parallel)->plan_evaluations());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(PersistentFrontierTest, FewerEvaluationsThanRebuildOnCoverage) {
  // Coverage is conditional (executions change utilities), the worst case
  // for the frontier: even so, carrying candidates across emissions must
  // beat re-running Drips from the forest roots every time.
  const stats::Workload w = MakeWorkload(3, 8, 0.4, 7);
  auto persistent_model = MustMakeMeasure(Measure::kCoverage, &w);
  auto rebuild_model = MustMakeMeasure(Measure::kCoverage, &w);

  IDripsOptions persistent_options;
  persistent_options.persistent_frontier = true;
  auto persistent = IDripsOrderer::Create(
      &w, persistent_model.get(), {PlanSpace::FullSpace(w)},
      persistent_options);
  ASSERT_TRUE(persistent.ok()) << persistent.status();

  IDripsOptions rebuild_options;
  rebuild_options.persistent_frontier = false;
  auto rebuild = IDripsOrderer::Create(&w, rebuild_model.get(),
                                       {PlanSpace::FullSpace(w)},
                                       rebuild_options);
  ASSERT_TRUE(rebuild.ok()) << rebuild.status();

  const std::vector<OrderedPlan> a = Drain(**persistent);
  const std::vector<OrderedPlan> b = Drain(**rebuild);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 8u * 8u * 8u);
  // Exact ordering: identical utility sequences (plans may differ on ties).
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].utility, b[i].utility, 1e-9) << "emission " << i;
  }
  EXPECT_LT((*persistent)->plan_evaluations(), (*rebuild)->plan_evaluations());
  EXPECT_EQ((*persistent)->frontier_size(), 0u);
}

}  // namespace
}  // namespace planorder::core
