/// Tests of the ranked mediation stream: byte-identical agreement with the
/// sort-everything oracle on synthetic domains, plan-budget behavior, the
/// zero-sound-plan edge case and stats accounting.

#include "anyk/ranked_stream.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/brute_force.h"
#include "core/idrips.h"
#include "core/pi.h"
#include "core/plan_space.h"
#include "datalog/parser.h"
#include "exec/synthetic_domain.h"
#include "reformulation/executable_order.h"
#include "reformulation/rewriting.h"
#include "test_util.h"
#include "utility/coverage_model.h"

namespace planorder::anyk {
namespace {

stats::WorkloadOptions SmallOptions(uint64_t seed) {
  stats::WorkloadOptions options;
  options.query_length = 2;
  options.bucket_size = 3;
  options.overlap_rate = 0.4;
  options.regions_per_bucket = 8;
  options.seed = seed;
  return options;
}

std::vector<RankedAnswer> Drain(RankedAnswerStream& stream) {
  std::vector<RankedAnswer> answers;
  while (true) {
    auto next = stream.Next();
    if (!next.ok()) {
      EXPECT_EQ(next.status().code(), StatusCode::kNotFound) << next.status();
      break;
    }
    answers.push_back(*next);
  }
  return answers;
}

/// The sort-everything oracle over every sound, executable rewriting of the
/// domain's full Cartesian product.
std::vector<RankedAnswer> Oracle(const exec::SyntheticDomain& d,
                                 const WeightOptions& weights) {
  std::vector<datalog::ConjunctiveQuery> rewritings;
  const size_t num_buckets = d.source_ids.size();
  std::vector<size_t> odometer(num_buckets, 0);
  while (true) {
    std::vector<datalog::SourceId> choice(num_buckets);
    for (size_t b = 0; b < num_buckets; ++b) {
      choice[b] = d.source_ids[b][odometer[b]];
    }
    auto plan = reformulation::BuildSoundPlan(d.query, d.catalog, choice);
    EXPECT_TRUE(plan.ok()) << plan.status();
    if (plan->has_value() &&
        reformulation::FindExecutableOrder(**plan, d.catalog).ok()) {
      rewritings.push_back((**plan).rewriting);
    }
    size_t b = 0;
    for (; b < num_buckets; ++b) {
      if (++odometer[b] < d.source_ids[b].size()) break;
      odometer[b] = 0;
    }
    if (b == num_buckets) break;
  }
  auto oracle = BruteForceRankedUnion(rewritings, d.source_facts, weights);
  EXPECT_TRUE(oracle.ok()) << oracle.status();
  return *oracle;
}

StatusOr<RankedAnswerStream> OpenFullBudget(const exec::SyntheticDomain& d,
                                            const WeightOptions& weights) {
  utility::CoverageModel model(&d.workload);
  auto orderer = core::IDripsOrderer::Create(
      &d.workload, &model, {core::PlanSpace::FullSpace(d.workload)});
  EXPECT_TRUE(orderer.ok()) << orderer.status();
  RankedAnswerStream::Options options;
  options.weights = weights;
  options.max_plans =
      int(core::PlanSpace::FullSpace(d.workload).NumPlans());
  return RankedAnswerStream::Open(d.catalog, d.query, d.source_facts,
                                  d.source_ids, **orderer, options);
}

TEST(RankedAnswerStreamTest, MatchesSortEverythingOracleByteForByte) {
  for (uint64_t seed : {71u, 72u, 73u}) {
    auto domain = exec::BuildSyntheticDomain(SmallOptions(seed), 120);
    ASSERT_TRUE(domain.ok());
    const exec::SyntheticDomain& d = **domain;
    for (Aggregation aggregation : {Aggregation::kSum, Aggregation::kMax}) {
      WeightOptions weights;
      weights.seed = seed;
      weights.aggregation = aggregation;
      auto stream = OpenFullBudget(d, weights);
      ASSERT_TRUE(stream.ok()) << stream.status();
      const std::vector<RankedAnswer> streamed = Drain(*stream);
      const std::vector<RankedAnswer> oracle = Oracle(d, weights);
      ASSERT_EQ(streamed.size(), oracle.size());
      for (size_t i = 0; i < streamed.size(); ++i) {
        EXPECT_TRUE(streamed[i] == oracle[i])
            << "seed " << seed << " " << AggregationName(aggregation)
            << " diverged at position " << i;
      }
      EXPECT_TRUE(stream->done());
      EXPECT_EQ(stream->stats().answers_emitted, streamed.size());
    }
  }
}

TEST(RankedAnswerStreamTest, EmissionWeaklyDecreasesAndDeduplicates) {
  auto domain = exec::BuildSyntheticDomain(SmallOptions(74), 200);
  ASSERT_TRUE(domain.ok());
  WeightOptions weights;
  weights.seed = 5;
  auto stream = OpenFullBudget(**domain, weights);
  ASSERT_TRUE(stream.ok());
  const std::vector<RankedAnswer> streamed = Drain(*stream);
  ASSERT_FALSE(streamed.empty());
  for (size_t i = 1; i < streamed.size(); ++i) {
    EXPECT_FALSE(RankedBefore(streamed[i], streamed[i - 1]))
        << "canonical order violated at " << i;
    EXPECT_NE(streamed[i].tuple, streamed[i - 1].tuple);
  }
  std::unordered_set<std::vector<datalog::Term>, datalog::TermVectorHash>
      seen;
  for (const RankedAnswer& answer : streamed) {
    EXPECT_TRUE(seen.insert(answer.tuple).second) << "duplicate emission";
  }
}

TEST(RankedAnswerStreamTest, PlanBudgetBoundsThePlanPhase) {
  auto domain = exec::BuildSyntheticDomain(SmallOptions(75), 150);
  ASSERT_TRUE(domain.ok());
  const exec::SyntheticDomain& d = **domain;
  WeightOptions weights;
  utility::CoverageModel model(&d.workload);
  auto orderer = core::PiOrderer::Create(
      &d.workload, &model, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer.ok());
  RankedAnswerStream::Options options;
  options.weights = weights;
  options.max_plans = 1;
  auto stream = RankedAnswerStream::Open(d.catalog, d.query, d.source_facts,
                                         d.source_ids, **orderer, options);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->stats().plans_considered, 1);
  EXPECT_LE(stream->stats().open_plans, 1u);
  const std::vector<RankedAnswer> streamed = Drain(*stream);

  // Everything the single best plan emits is a subset of the full union,
  // with identical (content-hashed) weights.
  const std::vector<RankedAnswer> oracle = Oracle(d, weights);
  EXPECT_LE(streamed.size(), oracle.size());
  for (const RankedAnswer& answer : streamed) {
    bool found = false;
    for (const RankedAnswer& reference : oracle) {
      if (reference == answer) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "answer missing from the full union";
  }
}

TEST(RankedAnswerStreamTest, ZeroSoundPlansYieldAnEmptyStream) {
  // Same construction as MediatorStreamTest: every view projects away the
  // join variable, so the plan phase discards everything.
  datalog::Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  ASSERT_TRUE(catalog.schema().AddRelation("r", 2).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vp1(A) :- p(A, B)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vp2(A) :- p(A, B)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vr1(C) :- r(B, C)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vr2(C) :- r(B, C)").ok());
  auto query = datalog::ParseRule("q(A,C) :- p(A,B), r(B,C)");
  ASSERT_TRUE(query.ok());

  const stats::Workload workload = test::MakeWorkload(2, 2, 0.4, 65);
  utility::CoverageModel model(&workload);
  auto orderer = core::PiOrderer::Create(&workload, &model,
                                         {core::PlanSpace::FullSpace(workload)});
  ASSERT_TRUE(orderer.ok());
  datalog::Database facts;
  RankedAnswerStream::Options options;
  options.max_plans = 4;
  auto stream = RankedAnswerStream::Open(catalog, *query, facts,
                                         {{0, 1}, {2, 3}}, **orderer, options);
  ASSERT_TRUE(stream.ok()) << stream.status();
  EXPECT_EQ(stream->stats().sound_plans, 0u);
  EXPECT_EQ(stream->stats().open_plans, 0u);
  auto next = stream->Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(stream->done());
}

TEST(RankedAnswerStreamTest, RejectsNonPositivePlanBudget) {
  auto domain = exec::BuildSyntheticDomain(SmallOptions(76), 20);
  ASSERT_TRUE(domain.ok());
  const exec::SyntheticDomain& d = **domain;
  utility::CoverageModel model(&d.workload);
  auto orderer = core::PiOrderer::Create(
      &d.workload, &model, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer.ok());
  RankedAnswerStream::Options options;
  options.max_plans = 0;
  auto stream = RankedAnswerStream::Open(d.catalog, d.query, d.source_facts,
                                         d.source_ids, **orderer, options);
  ASSERT_FALSE(stream.ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace planorder::anyk
