#include "reformulation/bucket.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace planorder::reformulation {
namespace {

using datalog::Catalog;
using datalog::ConjunctiveQuery;
using datalog::ParseRule;

/// The Figure 1 movie domain.
Catalog MovieCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog.schema().AddRelation("play-in", 2).ok());
  EXPECT_TRUE(catalog.schema().AddRelation("review-of", 2).ok());
  EXPECT_TRUE(catalog.schema().AddRelation("american", 1).ok());
  EXPECT_TRUE(catalog.schema().AddRelation("russian", 1).ok());
  for (const char* text : {
           "v1(A,M) :- play-in(A,M), american(M)",
           "v2(A,M) :- play-in(A,M), russian(M)",
           "v3(A,M) :- play-in(A,M)",
           "v4(R,M) :- review-of(R,M)",
           "v5(R,M) :- review-of(R,M)",
           "v6(R,M) :- review-of(R,M)",
       }) {
    auto id = catalog.AddSourceFromText(text);
    EXPECT_TRUE(id.ok()) << id.status();
  }
  return catalog;
}

ConjunctiveQuery MovieQuery() {
  auto q = ParseRule("q(M,R) :- play-in(ford,M), review-of(R,M)");
  EXPECT_TRUE(q.ok());
  return *q;
}

TEST(CatalogTest, ValidatesSources) {
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  // Unknown relation in view body.
  EXPECT_FALSE(catalog.AddSourceFromText("v(A,B) :- nope(A,B)").ok());
  // Arity mismatch.
  EXPECT_FALSE(catalog.AddSourceFromText("v(A) :- p(A)").ok());
  // Unsafe view head.
  EXPECT_FALSE(catalog.AddSourceFromText("v(A,C) :- p(A,B)").ok());
  // Empty body.
  EXPECT_FALSE(catalog.AddSourceFromText("v(A,B)").ok());
  // Good one.
  EXPECT_TRUE(catalog.AddSourceFromText("v(A,B) :- p(A,B)").ok());
  // Duplicate name.
  EXPECT_FALSE(catalog.AddSourceFromText("v(A,B) :- p(B,A)").ok());
  EXPECT_EQ(catalog.num_sources(), 1);
}

TEST(BucketTest, MovieDomainMatchesFigure1) {
  Catalog catalog = MovieCatalog();
  auto buckets = BuildBuckets(MovieQuery(), catalog);
  ASSERT_TRUE(buckets.ok()) << buckets.status();
  ASSERT_EQ(buckets->buckets.size(), 2u);
  // Bucket B1 = {V1, V2, V3}, bucket B2 = {V4, V5, V6}.
  EXPECT_EQ(buckets->buckets[0], (std::vector<datalog::SourceId>{0, 1, 2}));
  EXPECT_EQ(buckets->buckets[1], (std::vector<datalog::SourceId>{3, 4, 5}));
}

TEST(BucketTest, DistinguishedVariableMustBeRetrievable) {
  // A source projecting away the needed variable cannot serve the subgoal.
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  // v_bad only exports A; the query needs B as well.
  ASSERT_TRUE(catalog.AddSourceFromText("v_bad(A) :- p(A, B)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v_good(A,B) :- p(A, B)").ok());
  auto q = ParseRule("q(A,B) :- p(A,B)");
  ASSERT_TRUE(q.ok());
  auto buckets = BuildBuckets(*q, catalog);
  ASSERT_TRUE(buckets.ok());
  EXPECT_EQ(buckets->buckets[0], (std::vector<datalog::SourceId>{1}));
}

TEST(BucketTest, ExistentialQueryVariableAllowsProjection) {
  // If the query itself projects B away, the projecting source qualifies.
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v_proj(A) :- p(A, B)").ok());
  auto q = ParseRule("q(A) :- p(A, B)");
  ASSERT_TRUE(q.ok());
  auto buckets = BuildBuckets(*q, catalog);
  ASSERT_TRUE(buckets.ok());
  EXPECT_EQ(buckets->buckets[0], (std::vector<datalog::SourceId>{0}));
}

TEST(BucketTest, ConstantInSubgoalMustUnify) {
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v_ford(M) :- p(ford, M)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v_kate(M) :- p(kate, M)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v_any(A,M) :- p(A, M)").ok());
  auto q = ParseRule("q(M) :- p(ford, M)");
  ASSERT_TRUE(q.ok());
  auto buckets = BuildBuckets(*q, catalog);
  ASSERT_TRUE(buckets.ok());
  // v_ford (constant matches) and v_any (variable covers) qualify.
  EXPECT_EQ(buckets->buckets[0], (std::vector<datalog::SourceId>{0, 2}));
}

TEST(BucketTest, EmptyBucketWhenNoSourceServesSubgoal) {
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 1).ok());
  ASSERT_TRUE(catalog.schema().AddRelation("r", 1).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v(A) :- p(A)").ok());
  auto q = ParseRule("q(A) :- p(A), r(A)");
  ASSERT_TRUE(q.ok());
  auto buckets = BuildBuckets(*q, catalog);
  ASSERT_TRUE(buckets.ok());
  EXPECT_EQ(buckets->buckets[0].size(), 1u);
  EXPECT_TRUE(buckets->buckets[1].empty());
}

TEST(BucketTest, SourceCoveringMultipleSubgoalsAppearsInEachBucket) {
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  ASSERT_TRUE(catalog.schema().AddRelation("r", 2).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v(A,B,C) :- p(A,B), r(B,C)").ok());
  auto q = ParseRule("q(A,C) :- p(A,B), r(B,C)");
  ASSERT_TRUE(q.ok());
  auto buckets = BuildBuckets(*q, catalog);
  ASSERT_TRUE(buckets.ok());
  EXPECT_EQ(buckets->buckets[0], (std::vector<datalog::SourceId>{0}));
  EXPECT_EQ(buckets->buckets[1], (std::vector<datalog::SourceId>{0}));
}

TEST(BucketTest, RejectsQueryOverUnknownRelations) {
  Catalog catalog = MovieCatalog();
  auto q = ParseRule("q(X) :- unknown(X)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(BuildBuckets(*q, catalog).ok());
}

}  // namespace
}  // namespace planorder::reformulation
