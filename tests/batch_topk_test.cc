#include "core/batch_topk.h"

#include <gtest/gtest.h>

#include "core/pi.h"
#include "test_util.h"

namespace planorder::core {
namespace {

using test::Drain;
using test::MakeWorkload;
using test::Measure;
using test::MustMakeMeasure;

TEST(BatchTopKTest, RefusesConditionalMeasures) {
  stats::Workload w = MakeWorkload(3, 4, 0.3, 1);
  for (Measure measure :
       {Measure::kCoverage, Measure::kFailureCache, Measure::kMonetaryCache}) {
    auto model = MustMakeMeasure(measure, &w);
    auto result =
        BatchTopK(&w, model.get(), {PlanSpace::FullSpace(w)}, 5);
    EXPECT_FALSE(result.ok()) << test::MeasureName(measure);
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(BatchTopKTest, RejectsNonPositiveK) {
  stats::Workload w = MakeWorkload(2, 3, 0.3, 2);
  auto model = MustMakeMeasure(Measure::kCost2, &w);
  EXPECT_FALSE(BatchTopK(&w, model.get(), {PlanSpace::FullSpace(w)}, 0).ok());
}

class BatchTopKAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchTopKAgreementTest, MatchesIncrementalOrderingPrefix) {
  stats::Workload w = MakeWorkload(3, 6, 0.3, GetParam());
  const std::vector<PlanSpace> spaces = {PlanSpace::FullSpace(w)};
  for (Measure measure :
       {Measure::kCost2, Measure::kFailureNoCache, Measure::kMonetary}) {
    auto ref_model = MustMakeMeasure(measure, &w);
    auto pi = PiOrderer::Create(&w, ref_model.get(), spaces);
    ASSERT_TRUE(pi.ok());
    const auto reference = Drain(**pi, 20);

    auto model = MustMakeMeasure(measure, &w);
    auto batch = BatchTopK(&w, model.get(), spaces, 20);
    ASSERT_TRUE(batch.ok()) << batch.status();
    ASSERT_EQ(batch->size(), reference.size());
    for (size_t i = 0; i < batch->size(); ++i) {
      EXPECT_NEAR((*batch)[i].utility, reference[i].utility, 1e-9)
          << test::MeasureName(measure) << " at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchTopKAgreementTest,
                         ::testing::Values(5, 6, 7, 8));

TEST(BatchTopKTest, KLargerThanSpaceReturnsEverythingSorted) {
  stats::Workload w = MakeWorkload(2, 3, 0.3, 9);
  auto model = MustMakeMeasure(Measure::kCost2, &w);
  auto batch = BatchTopK(&w, model.get(), {PlanSpace::FullSpace(w)}, 1000);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 9u);
  for (size_t i = 1; i < batch->size(); ++i) {
    EXPECT_LE((*batch)[i].utility, (*batch)[i - 1].utility + 1e-12);
  }
}

TEST(BatchTopKTest, PrunesAgainstFullEnumeration) {
  stats::Workload w = MakeWorkload(3, 12, 0.3, 10);
  auto model = MustMakeMeasure(Measure::kFailureNoCache, &w);
  int64_t evaluations = 0;
  auto batch = BatchTopK(&w, model.get(), {PlanSpace::FullSpace(w)}, 5,
                         AbstractionHeuristic::kByCardinality, &evaluations);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->size(), 5u);
  // Far fewer evaluations than the 1728-plan brute force.
  EXPECT_LT(evaluations, 1728 / 2);
}

TEST(BatchTopKTest, EmptySpacesYieldNoPlans) {
  stats::Workload w = MakeWorkload(2, 3, 0.3, 11);
  auto model = MustMakeMeasure(Measure::kCost2, &w);
  PlanSpace empty;
  empty.buckets = {{0, 1}, {}};
  auto batch = BatchTopK(&w, model.get(), {empty}, 3);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

}  // namespace
}  // namespace planorder::core
