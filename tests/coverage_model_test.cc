#include "utility/coverage_model.h"

#include <random>

#include <gtest/gtest.h>

#include "core/abstraction.h"
#include "core/plan_space.h"

namespace planorder::utility {
namespace {

using core::AbstractionForest;
using core::AbstractionHeuristic;
using core::AbstractPlan;
using core::PlanSpace;

stats::Workload MakeWorkload(uint64_t seed, int bucket_size = 6,
                             double overlap = 0.3) {
  stats::WorkloadOptions options;
  options.query_length = 3;
  options.bucket_size = bucket_size;
  options.regions_per_bucket = 12;
  options.overlap_rate = overlap;
  options.seed = seed;
  auto w = stats::Workload::Generate(options);
  EXPECT_TRUE(w.ok()) << w.status();
  return std::move(*w);
}

TEST(CoverageModelTest, CoverageOfFreshPlanIsBoxVolume) {
  stats::Workload w = MakeWorkload(1);
  CoverageModel model(&w);
  ExecutionContext ctx(&w);
  const ConcretePlan plan = {0, 0, 0};
  std::vector<stats::RegionMask> box;
  for (int b = 0; b < 3; ++b) box.push_back(w.source(b, 0).regions);
  EXPECT_DOUBLE_EQ(model.EvaluateConcrete(plan, ctx),
                   ctx.universe().BoxVolume(box));
}

TEST(CoverageModelTest, ExecutedPlanHasZeroResidualCoverage) {
  stats::Workload w = MakeWorkload(2);
  CoverageModel model(&w);
  ExecutionContext ctx(&w);
  ctx.MarkExecuted({1, 1, 1});
  EXPECT_DOUBLE_EQ(model.EvaluateConcrete({1, 1, 1}, ctx), 0.0);
}

TEST(CoverageModelTest, DiminishingReturnsHolds) {
  stats::Workload w = MakeWorkload(3);
  CoverageModel model(&w);
  EXPECT_TRUE(model.diminishing_returns());
  EXPECT_FALSE(model.fully_monotonic());
  ExecutionContext ctx(&w);
  std::mt19937_64 rng(3);
  double last = model.EvaluateConcrete({0, 1, 2}, ctx);
  for (int i = 0; i < 20; ++i) {
    ConcretePlan executed(3);
    for (int b = 0; b < 3; ++b) {
      executed[b] = static_cast<int>(rng() % w.bucket_size(b));
    }
    ctx.MarkExecuted(executed);
    const double now = model.EvaluateConcrete({0, 1, 2}, ctx);
    EXPECT_LE(now, last + 1e-12);
    last = now;
  }
}

TEST(CoverageModelTest, IndependenceIsBoxDisjointness) {
  std::vector<std::vector<stats::SourceStats>> buckets(2);
  stats::SourceStats left, right, both;
  left.regions.bits = 0b0011;
  right.regions.bits = 0b1100;
  both.regions.bits = 0b0110;
  buckets[0] = {left, right, both};
  buckets[1] = {left, right, both};
  auto w = stats::Workload::FromParts(
      buckets, {std::vector<double>(4, 0.25), std::vector<double>(4, 0.25)},
      1.0, {10.0, 10.0});
  ASSERT_TRUE(w.ok());
  CoverageModel model(&*w);
  // Disjoint at bucket 0 -> independent regardless of bucket 1.
  EXPECT_TRUE(model.Independent({0, 2}, {1, 2}));
  // Overlapping everywhere -> dependent.
  EXPECT_FALSE(model.Independent({2, 2}, {0, 0}));
  // Independence actually means the utility doesn't move.
  ExecutionContext ctx(&*w);
  const double before = model.EvaluateConcrete({0, 2}, ctx);
  ctx.MarkExecuted({1, 2});
  EXPECT_DOUBLE_EQ(model.EvaluateConcrete({0, 2}, ctx), before);
}

TEST(CoverageModelTest, GroupIndependence) {
  stats::Workload w = MakeWorkload(4);
  CoverageModel model(&w);
  const PlanSpace space = PlanSpace::FullSpace(w);
  const AbstractionForest forest =
      AbstractionForest::Build(w, space, AbstractionHeuristic::kByCardinality);
  AbstractPlan top;
  top.forest = &forest;
  for (int b = 0; b < 3; ++b) top.nodes.push_back(forest.root(b));
  const auto summaries = top.Summaries();
  const NodeSpan nodes(summaries.data(), summaries.size());
  // Sound: whenever the group claims independence, every member must be
  // independent.
  std::mt19937_64 rng(4);
  for (int i = 0; i < 20; ++i) {
    ConcretePlan d(3);
    for (int b = 0; b < 3; ++b) d[b] = static_cast<int>(rng() % w.bucket_size(b));
    if (model.GroupIndependentOf(nodes, d)) {
      for (int x = 0; x < w.bucket_size(0); ++x) {
        EXPECT_TRUE(model.Independent({x, 0, 0}, d));
      }
    }
  }
}

TEST(CoverageModelTest, GroupContainsIndependentPlanSoundAndUseful) {
  stats::Workload w = MakeWorkload(5, /*bucket_size=*/5, /*overlap=*/0.2);
  CoverageModel model(&w);
  const PlanSpace space = PlanSpace::FullSpace(w);
  const AbstractionForest forest =
      AbstractionForest::Build(w, space, AbstractionHeuristic::kByCardinality);
  AbstractPlan top;
  top.forest = &forest;
  for (int b = 0; b < 3; ++b) top.nodes.push_back(forest.root(b));
  const auto summaries = top.Summaries();
  const NodeSpan nodes(summaries.data(), summaries.size());

  std::mt19937_64 rng(5);
  for (int round = 0; round < 20; ++round) {
    std::vector<ConcretePlan> executed_storage;
    for (int i = 0; i < 3; ++i) {
      ConcretePlan e(3);
      for (int b = 0; b < 3; ++b) {
        e[b] = static_cast<int>(rng() % w.bucket_size(b));
      }
      executed_storage.push_back(std::move(e));
    }
    std::vector<const ConcretePlan*> executed;
    for (const auto& e : executed_storage) executed.push_back(&e);

    const bool claimed = model.GroupContainsIndependentPlan(nodes, executed);
    // Brute-force ground truth over all concrete members.
    bool truth = false;
    for (int a = 0; a < w.bucket_size(0) && !truth; ++a) {
      for (int b = 0; b < w.bucket_size(1) && !truth; ++b) {
        for (int c = 0; c < w.bucket_size(2) && !truth; ++c) {
          const ConcretePlan s = {a, b, c};
          bool all = true;
          for (const auto* e : executed) {
            if (!model.Independent(s, *e)) {
              all = false;
              break;
            }
          }
          truth = all;
        }
      }
    }
    // Exact in this model (budget not hit at this size).
    EXPECT_EQ(claimed, truth) << "round " << round;
  }
}

TEST(CoverageModelTest, EmptyOthersAlwaysContainsIndependentPlan) {
  stats::Workload w = MakeWorkload(6);
  CoverageModel model(&w);
  const auto& summary = w.summary(0, 0);
  const stats::StatSummary* one[] = {&summary, &w.summary(1, 0),
                                     &w.summary(2, 0)};
  EXPECT_TRUE(model.GroupContainsIndependentPlan(NodeSpan(one, 3), {}));
}

/// Abstract coverage intervals must enclose all members, under execution.
class CoverageEnclosureTest : public ::testing::TestWithParam<int> {};

TEST_P(CoverageEnclosureTest, AbstractIntervalsEncloseAllMembers) {
  stats::Workload w = MakeWorkload(GetParam());
  CoverageModel model(&w);
  const PlanSpace space = PlanSpace::FullSpace(w);
  const AbstractionForest forest =
      AbstractionForest::Build(w, space, AbstractionHeuristic::kByMaskSimilarity);
  ExecutionContext ctx(&w);
  std::mt19937_64 rng(GetParam() * 31 + 1);
  for (int round = 0; round < 6; ++round) {
    AbstractPlan plan;
    plan.forest = &forest;
    plan.nodes.resize(w.num_buckets());
    for (int b = 0; b < w.num_buckets(); ++b) {
      int node = forest.root(b);
      while (!forest.is_leaf(node) && (rng() & 1)) {
        node = (rng() & 1) ? forest.left(node) : forest.right(node);
      }
      plan.nodes[b] = node;
    }
    const auto summaries = plan.Summaries();
    const Interval interval =
        model.Evaluate(NodeSpan(summaries.data(), summaries.size()), ctx);
    EXPECT_GE(interval.lo(), -1e-12);
    std::vector<size_t> cursor(plan.nodes.size(), 0);
    while (true) {
      ConcretePlan concrete(plan.nodes.size());
      for (size_t b = 0; b < plan.nodes.size(); ++b) {
        concrete[b] = forest.summary(plan.nodes[b]).members[cursor[b]];
      }
      const double u = model.EvaluateConcrete(concrete, ctx);
      EXPECT_GE(u, interval.lo() - 1e-9);
      EXPECT_LE(u, interval.hi() + 1e-9);
      size_t b = 0;
      for (; b < plan.nodes.size(); ++b) {
        if (++cursor[b] < forest.summary(plan.nodes[b]).members.size()) break;
        cursor[b] = 0;
      }
      if (b == plan.nodes.size()) break;
    }
    ConcretePlan executed(w.num_buckets());
    for (int b = 0; b < w.num_buckets(); ++b) {
      executed[b] = static_cast<int>(rng() % w.bucket_size(b));
    }
    ctx.MarkExecuted(executed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverageEnclosureTest,
                         ::testing::Values(21, 22, 23, 24, 25));

}  // namespace
}  // namespace planorder::utility
