#include "datalog/parser.h"

#include <gtest/gtest.h>

namespace planorder::datalog {
namespace {

TEST(ParserTest, ParsesAtom) {
  auto atom = ParseAtom("play-in(ford, M)");
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->predicate, "play-in");
  ASSERT_EQ(atom->arity(), 2u);
  EXPECT_EQ(atom->args[0], Term::Constant("ford"));
  EXPECT_EQ(atom->args[1], Term::Variable("M"));
}

TEST(ParserTest, UppercaseIsVariableLowercaseIsConstant) {
  auto atom = ParseAtom("p(X, x, Movie, movie, X1, x1)");
  ASSERT_TRUE(atom.ok());
  EXPECT_TRUE(atom->args[0].is_variable());
  EXPECT_TRUE(atom->args[1].is_constant());
  EXPECT_TRUE(atom->args[2].is_variable());
  EXPECT_TRUE(atom->args[3].is_constant());
  EXPECT_TRUE(atom->args[4].is_variable());
  EXPECT_TRUE(atom->args[5].is_constant());
}

TEST(ParserTest, QuotedConstants) {
  auto atom = ParseAtom("p('Harrison Ford', 'x(y)')");
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->args[0], Term::Constant("Harrison Ford"));
  EXPECT_EQ(atom->args[1], Term::Constant("x(y)"));
}

TEST(ParserTest, NumbersAreConstants) {
  auto atom = ParseAtom("p(42, 3)");
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->args[0], Term::Constant("42"));
}

TEST(ParserTest, FunctionTerms) {
  auto atom = ParseAtom("p(f_V1_Z(A, b))");
  ASSERT_TRUE(atom.ok());
  const Term& t = atom->args[0];
  ASSERT_TRUE(t.is_function());
  EXPECT_EQ(t.name(), "f_V1_Z");
  ASSERT_EQ(t.args().size(), 2u);
  EXPECT_TRUE(t.args()[0].is_variable());
  EXPECT_TRUE(t.args()[1].is_constant());
}

TEST(ParserTest, ZeroArityAtom) {
  auto atom = ParseAtom("done()");
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->arity(), 0u);
}

TEST(ParserTest, ParsesRule) {
  auto rule = ParseRule("Q(M,R) :- play-in(ford,M), review-of(R,M).");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->head.predicate, "Q");
  ASSERT_EQ(rule->body.size(), 2u);
  EXPECT_EQ(rule->body[0].ToString(), "play-in(ford,M)");
  EXPECT_EQ(rule->body[1].ToString(), "review-of(R,M)");
}

TEST(ParserTest, FactIsRuleWithEmptyBody) {
  auto rule = ParseRule("play-in(ford, 'Blade Runner')");
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule->body.empty());
  EXPECT_TRUE(rule->head.IsGround());
}

TEST(ParserTest, ParsesProgramWithComments) {
  auto program = ParseProgram(R"(
    % the movie domain of Figure 1
    v1(A,M) :- play-in(A,M), american(M).
    v4(R,M) :- review-of(R,M).
    play-in(ford, witness).
  )");
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program->size(), 3u);
  EXPECT_EQ((*program)[0].body.size(), 2u);
  EXPECT_EQ((*program)[2].body.size(), 0u);
}

TEST(ParserTest, RejectsMissingParen) {
  EXPECT_FALSE(ParseAtom("p(a").ok());
  EXPECT_FALSE(ParseAtom("p a)").ok());
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseAtom("p(a) extra").ok());
  EXPECT_FALSE(ParseRule("p(X) :- q(X) r(X)").ok());
}

TEST(ParserTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseAtom("p('oops)").ok());
}

TEST(ParserTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseAtom("").ok());
  EXPECT_FALSE(ParseRule("   ").ok());
}

TEST(ParserTest, RoundTripsThroughToString) {
  const std::string text = "q(M,R) :- play-in(ford,M), review-of(R,M)";
  auto rule = ParseRule(text);
  ASSERT_TRUE(rule.ok());
  auto reparsed = ParseRule(rule->ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*rule, *reparsed);
}

}  // namespace
}  // namespace planorder::datalog
