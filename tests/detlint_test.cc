// Tests for the detlint portable scanner (tools/detlint/scanner.h): the
// check catalog fires on exactly the seeded corpus lines, suppression
// directives silence it, path scoping routes checks, and the full-tree scan
// of THIS repository is clean — the zero-findings gate, enforced as a unit
// test so `ctest` alone catches a regression before CI does.

#include "scanner.h"

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"

// Both provided by tests/CMakeLists.txt.
#ifndef DETLINT_TESTDATA_DIR
#error "build must define DETLINT_TESTDATA_DIR"
#endif
#ifndef DETLINT_REPO_ROOT
#error "build must define DETLINT_REPO_ROOT"
#endif

namespace detlint = planorder::detlint;

namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<detlint::Finding> ScanCorpusFile(const std::string& name,
                                             bool include_suppressed = true) {
  const std::string contents =
      ReadFile(std::string(DETLINT_TESTDATA_DIR) + "/" + name);
  const detlint::Directives directives = detlint::ParseDirectives(contents);
  EXPECT_FALSE(directives.scan_as.empty())
      << name << " lacks a detlint-scan-as header";
  detlint::ScanOptions options;
  options.include_suppressed = include_suppressed;
  return detlint::ScanFile(directives.scan_as, contents, options);
}

std::set<std::pair<int, std::string>> ActiveSites(
    const std::vector<detlint::Finding>& findings) {
  std::set<std::pair<int, std::string>> sites;
  for (const detlint::Finding& f : findings) {
    if (!f.suppressed) sites.emplace(f.line, detlint::CheckName(f.check));
  }
  return sites;
}

/// Line numbers of the corpus expectations, read back from the files
/// themselves so the test never drifts from the corpus.
std::set<std::pair<int, std::string>> ExpectedSites(const std::string& name,
                                                    bool suppressed) {
  const std::string contents =
      ReadFile(std::string(DETLINT_TESTDATA_DIR) + "/" + name);
  std::set<std::pair<int, std::string>> sites;
  for (const detlint::Directives::Expectation& e :
       detlint::ParseDirectives(contents).expectations) {
    if (e.suppressed == suppressed) {
      sites.emplace(e.line, detlint::CheckName(e.check));
    }
  }
  return sites;
}

TEST(DetlintCorpusTest, D1FiresAtEveryAnnotatedLine) {
  const auto findings = ScanCorpusFile("d1_banned_sources.cc");
  EXPECT_EQ(ActiveSites(findings), ExpectedSites("d1_banned_sources.cc",
                                                 /*suppressed=*/false));
}

TEST(DetlintCorpusTest, D2FiresAtEveryAnnotatedLine) {
  const auto findings = ScanCorpusFile("d2_unordered_paths.cc");
  EXPECT_EQ(ActiveSites(findings), ExpectedSites("d2_unordered_paths.cc",
                                                 /*suppressed=*/false));
}

TEST(DetlintCorpusTest, D3FiresAtEveryAnnotatedLine) {
  const auto findings = ScanCorpusFile("d3_float_folds.cc");
  EXPECT_EQ(ActiveSites(findings), ExpectedSites("d3_float_folds.cc",
                                                 /*suppressed=*/false));
}

TEST(DetlintCorpusTest, D4FiresAtEveryAnnotatedLine) {
  const auto findings = ScanCorpusFile("d4_pointer_keys.cc");
  EXPECT_EQ(ActiveSites(findings), ExpectedSites("d4_pointer_keys.cc",
                                                 /*suppressed=*/false));
}

TEST(DetlintCorpusTest, SuppressionDirectivesSilenceEveryCheck) {
  for (const char* name :
       {"d1_banned_sources.cc", "d2_unordered_paths.cc", "d3_float_folds.cc",
        "d4_pointer_keys.cc"}) {
    const auto expected_suppressed = ExpectedSites(name, /*suppressed=*/true);
    ASSERT_FALSE(expected_suppressed.empty())
        << name << " seeds no suppressed site";
    std::set<std::pair<int, std::string>> suppressed;
    for (const detlint::Finding& f : ScanCorpusFile(name)) {
      if (f.suppressed) suppressed.emplace(f.line, detlint::CheckName(f.check));
    }
    EXPECT_EQ(suppressed, expected_suppressed) << name;
    // And the default scan (no include_suppressed) must not report them.
    EXPECT_TRUE(
        ActiveSites(ScanCorpusFile(name, /*include_suppressed=*/false))
            .count(*expected_suppressed.begin()) == 0)
        << name;
  }
}

TEST(DetlintCorpusTest, SelfTestPassesOnTheGoldenCorpus) {
  const std::vector<std::string> errors =
      detlint::SelfTest(DETLINT_TESTDATA_DIR);
  for (const std::string& error : errors) ADD_FAILURE() << error;
}

TEST(DetlintCorpusTest, SelfTestAcceptsMatchingExternalFindings) {
  // Simulate the LibTooling mode: feed the portable scanner's own active
  // findings back as "external" results; the corpus must validate them.
  std::vector<detlint::Finding> external;
  for (const char* name :
       {"d1_banned_sources.cc", "d2_unordered_paths.cc", "d3_float_folds.cc",
        "d4_pointer_keys.cc"}) {
    for (detlint::Finding f : ScanCorpusFile(name, false)) {
      f.file = name;
      external.push_back(std::move(f));
    }
  }
  const std::vector<std::string> errors =
      detlint::SelfTest(DETLINT_TESTDATA_DIR, &external);
  for (const std::string& error : errors) ADD_FAILURE() << error;
}

TEST(DetlintCorpusTest, SelfTestRejectsMissingAndExtraExternalFindings) {
  std::vector<detlint::Finding> complete;
  for (const char* name :
       {"d1_banned_sources.cc", "d2_unordered_paths.cc", "d3_float_folds.cc",
        "d4_pointer_keys.cc"}) {
    for (detlint::Finding f : ScanCorpusFile(name, false)) {
      f.file = name;
      complete.push_back(std::move(f));
    }
  }

  // Missing: drop one finding → exactly one "expected but did not fire".
  std::vector<detlint::Finding> missing = complete;
  missing.pop_back();
  std::vector<std::string> errors =
      detlint::SelfTest(DETLINT_TESTDATA_DIR, &missing);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("expected but did not fire"), std::string::npos);

  // Extra: invent a finding at a line with no expectation.
  std::vector<detlint::Finding> extra = complete;
  detlint::Finding bogus;
  bogus.file = "d2_unordered_paths.cc";
  bogus.line = 1;
  bogus.check = detlint::CheckId::kD2;
  bogus.message = "bogus";
  extra.push_back(bogus);
  errors = detlint::SelfTest(DETLINT_TESTDATA_DIR, &extra);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("without a detlint-expect"), std::string::npos);

  // A suppressed site re-firing externally is the directive breaking.
  std::vector<detlint::Finding> unsuppressed = complete;
  detlint::Finding leaked;
  leaked.file = "d1_banned_sources.cc";
  leaked.check = detlint::CheckId::kD1;
  leaked.message = "leak";
  for (const detlint::Directives::Expectation& e :
       detlint::ParseDirectives(
           ReadFile(std::string(DETLINT_TESTDATA_DIR) +
                    "/d1_banned_sources.cc"))
           .expectations) {
    if (e.suppressed) leaked.line = e.line;
  }
  ASSERT_GT(leaked.line, 1);
  unsuppressed.push_back(leaked);
  errors = detlint::SelfTest(DETLINT_TESTDATA_DIR, &unsuppressed);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("despite a suppression"), std::string::npos);
}

TEST(DetlintScopingTest, ChecksRouteByPath) {
  using detlint::CheckAppliesTo;
  using detlint::CheckId;
  // D1 everywhere but the shims that own these calls.
  EXPECT_TRUE(CheckAppliesTo(CheckId::kD1, "src/core/orderer.cc"));
  EXPECT_TRUE(CheckAppliesTo(CheckId::kD1, "bench/bench_anyk.cc"));
  EXPECT_FALSE(CheckAppliesTo(CheckId::kD1, "src/runtime/clock.h"));
  EXPECT_FALSE(CheckAppliesTo(CheckId::kD1, "src/runtime/clock.cc"));
  EXPECT_FALSE(CheckAppliesTo(CheckId::kD1, "src/base/rng.h"));
  // D2 only in the ordering/emission/answer paths.
  EXPECT_TRUE(CheckAppliesTo(CheckId::kD2, "src/anyk/executor.cc"));
  EXPECT_TRUE(CheckAppliesTo(CheckId::kD2, "src/sim/harness.cc"));
  EXPECT_FALSE(CheckAppliesTo(CheckId::kD2, "src/service/session.cc"));
  EXPECT_FALSE(CheckAppliesTo(CheckId::kD2, "tests/mediator_test.cc"));
  // D3 only in the weight fold paths.
  EXPECT_TRUE(CheckAppliesTo(CheckId::kD3, "src/anyk/weights.cc"));
  EXPECT_FALSE(CheckAppliesTo(CheckId::kD3, "src/exec/mediator.cc"));
  // D4 across src/.
  EXPECT_TRUE(CheckAppliesTo(CheckId::kD4, "src/datalog/term.h"));
  EXPECT_FALSE(CheckAppliesTo(CheckId::kD4, "bench/bench_util.h"));
}

TEST(DetlintScopingTest, ScanVisitsSourcesButNotTheLinterItself) {
  using detlint::ScanVisits;
  EXPECT_TRUE(ScanVisits("src/core/orderer.cc"));
  EXPECT_TRUE(ScanVisits("tests/mediator_test.cc"));
  EXPECT_TRUE(ScanVisits("bench/bench_flags.h"));
  EXPECT_FALSE(ScanVisits("tools/detlint/scanner.cc"));
  EXPECT_FALSE(ScanVisits("tools/detlint/testdata/d1_banned_sources.cc"));
  EXPECT_FALSE(ScanVisits("src/core/README.md"));
  EXPECT_FALSE(ScanVisits("docs/DESIGN.md"));
}

TEST(DetlintDirectiveTest, CommentsAndStringsNeverFire) {
  const std::string contents =
      "// std::rand() in a comment\n"
      "/* steady_clock in a block comment */\n"
      "const char* s = \"std::random_device\";\n"
      "const char* r = R\"(getenv inside a raw string)\";\n";
  EXPECT_TRUE(detlint::ScanFile("src/core/x.cc", contents).empty());
}

TEST(DetlintDirectiveTest, SuppressionCoversSameAndNextLineOnly) {
  const std::string directive =
      "// detlint: order-insensitive(membership only)\n";
  const std::string hit = "std::unordered_set<int> s;\n";
  EXPECT_TRUE(
      detlint::ScanFile("src/core/x.cc", directive + hit).empty());
  // One intervening line and the suppression no longer reaches.
  EXPECT_FALSE(
      detlint::ScanFile("src/core/x.cc", directive + "int y;\n" + hit)
          .empty());
}

TEST(DetlintDirectiveTest, AllowIsCheckSpecific) {
  // An allow(D1) does not silence a D2 on the same line.
  const std::string contents =
      "// detlint: allow(D1, wrong check)\n"
      "std::unordered_set<int> s;\n";
  const auto findings = detlint::ScanFile("src/core/x.cc", contents);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, detlint::CheckId::kD2);
}

TEST(DetlintDirectiveTest, ReasonIsMandatory) {
  const std::string contents =
      "// detlint: allow(D1, )\n"
      "auto t = std::chrono::steady_clock::now();\n";
  const auto findings = detlint::ScanFile("src/service/x.cc", contents);
  // Both the undimmed D1 and the malformed-directive report surface.
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].message, "suppression directive without a reason");
  EXPECT_EQ(findings[1].check, detlint::CheckId::kD1);
}

TEST(DetlintDirectiveTest, HexLiteralsDoNotTripTheFloatHeuristic) {
  // The avalanche constant of anyk/weights.cc — its embedded "9e37" must
  // not read as an exponent literal.
  const std::string contents = "x += 0x9e3779b97f4a7c15ull;\n";
  EXPECT_TRUE(detlint::ScanFile("src/anyk/x.cc", contents).empty());
}

TEST(DetlintTreeTest, RepositoryScanIsClean) {
  const std::vector<detlint::Finding> findings =
      detlint::ScanTree(DETLINT_REPO_ROOT);
  for (const detlint::Finding& f : findings) {
    ADD_FAILURE() << detlint::FormatFinding(f);
  }
}

}  // namespace
