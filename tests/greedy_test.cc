#include "core/greedy.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"

namespace planorder::core {
namespace {

using test::Drain;
using test::MakeWorkload;

TEST(GreedyTest, RefusesNonMonotonicMeasures) {
  stats::Workload w = MakeWorkload(3, 4, 0.3, 1);
  utility::CoverageModel coverage(&w);
  auto greedy =
      GreedyOrderer::Create(&w, &coverage, {PlanSpace::FullSpace(w)});
  EXPECT_FALSE(greedy.ok());
  EXPECT_EQ(greedy.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GreedyTest, FirstPlanIsPerBucketBest) {
  stats::Workload w = MakeWorkload(3, 6, 0.3, 2);
  utility::AdditiveCostModel model(&w);
  auto greedy = GreedyOrderer::Create(&w, &model, {PlanSpace::FullSpace(w)});
  ASSERT_TRUE(greedy.ok());
  auto first = (*greedy)->Next();
  ASSERT_TRUE(first.ok());
  for (int b = 0; b < 3; ++b) {
    double best = model.MonotoneScore(b, 0);
    for (int i = 1; i < w.bucket_size(b); ++i) {
      best = std::max(best, model.MonotoneScore(b, i));
    }
    EXPECT_DOUBLE_EQ(model.MonotoneScore(b, first->plan[b]), best);
  }
}

class GreedyAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyAgreementTest, MatchesBruteForceOnAdditiveCost) {
  stats::Workload w = MakeWorkload(3, 5, 0.3, GetParam());
  utility::AdditiveCostModel model(&w);
  const std::vector<PlanSpace> spaces = {PlanSpace::FullSpace(w)};

  auto naive =
      PiOrderer::Create(&w, &model, spaces, /*use_independence=*/false);
  ASSERT_TRUE(naive.ok());
  const auto reference = Drain(**naive);

  auto greedy = GreedyOrderer::Create(&w, &model, spaces);
  ASSERT_TRUE(greedy.ok());
  const auto plans = Drain(**greedy);

  ASSERT_EQ(plans.size(), reference.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    EXPECT_NEAR(plans[i].utility, reference[i].utility, 1e-9) << "at " << i;
  }
}

TEST_P(GreedyAgreementTest, MatchesBruteForceOnUniformAlphaMeasure2) {
  stats::WorkloadOptions options;
  options.query_length = 3;
  options.bucket_size = 5;
  options.alpha_min = 0.4;
  options.alpha_max = 0.4;  // uniform transmission costs
  options.seed = GetParam();
  auto w = stats::Workload::Generate(options);
  ASSERT_TRUE(w.ok());

  utility::BoundJoinOptions bj;
  bj.assume_uniform_alpha = true;
  auto model = utility::BoundJoinCostModel::Create(&*w, bj);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE((*model)->fully_monotonic());

  const std::vector<PlanSpace> spaces = {PlanSpace::FullSpace(*w)};
  auto naive = PiOrderer::Create(&*w, model->get(), spaces,
                                 /*use_independence=*/false);
  ASSERT_TRUE(naive.ok());
  const auto reference = Drain(**naive);

  auto greedy = GreedyOrderer::Create(&*w, model->get(), spaces);
  ASSERT_TRUE(greedy.ok());
  const auto plans = Drain(**greedy);

  ASSERT_EQ(plans.size(), reference.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    EXPECT_NEAR(plans[i].utility, reference[i].utility, 1e-9) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyAgreementTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(GreedyTest, UtilitiesNonIncreasing) {
  stats::Workload w = MakeWorkload(4, 4, 0.3, 77);
  utility::AdditiveCostModel model(&w);
  auto greedy = GreedyOrderer::Create(&w, &model, {PlanSpace::FullSpace(w)});
  ASSERT_TRUE(greedy.ok());
  const auto plans = Drain(**greedy);
  EXPECT_EQ(plans.size(), 256u);
  for (size_t i = 1; i < plans.size(); ++i) {
    EXPECT_LE(plans[i].utility, plans[i - 1].utility + 1e-12);
  }
}

TEST(GreedyTest, EvaluationCountGrowsLinearlyInEmissions) {
  // Greedy evaluates one plan per split space: <= m new spaces per emission.
  stats::Workload w = MakeWorkload(3, 10, 0.3, 88);
  utility::AdditiveCostModel model(&w);
  auto greedy = GreedyOrderer::Create(&w, &model, {PlanSpace::FullSpace(w)});
  ASSERT_TRUE(greedy.ok());
  const int k = 20;
  (void)Drain(**greedy, k);
  // 1 initial + at most m per emission.
  EXPECT_LE((*greedy)->plan_evaluations(), 1 + 3 * k);
  EXPECT_LT((*greedy)->plan_evaluations(),
            static_cast<int64_t>(PlanSpace::FullSpace(w).NumPlans()));
}

TEST(GreedyTest, MultipleSpacesMergeExactly) {
  // Greedy over a pre-split space set must match brute force over the union.
  stats::Workload w = MakeWorkload(3, 4, 0.3, 123);
  utility::AdditiveCostModel model(&w);
  PlanSpace full = PlanSpace::FullSpace(w);
  std::vector<PlanSpace> spaces = SplitAround(full, {1, 1, 1});
  ASSERT_GT(spaces.size(), 1u);

  auto naive =
      PiOrderer::Create(&w, &model, spaces, /*use_independence=*/false);
  ASSERT_TRUE(naive.ok());
  const auto reference = Drain(**naive);
  ASSERT_EQ(reference.size(), full.NumPlans() - 1);

  auto greedy = GreedyOrderer::Create(&w, &model, spaces);
  ASSERT_TRUE(greedy.ok());
  const auto plans = Drain(**greedy);
  ASSERT_EQ(plans.size(), reference.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    EXPECT_NEAR(plans[i].utility, reference[i].utility, 1e-9) << "at " << i;
  }
}

TEST(GreedyTest, ExhaustsAndReportsNotFound) {
  stats::Workload w = MakeWorkload(2, 2, 0.3, 99);
  utility::AdditiveCostModel model(&w);
  auto greedy = GreedyOrderer::Create(&w, &model, {PlanSpace::FullSpace(w)});
  ASSERT_TRUE(greedy.ok());
  EXPECT_EQ(Drain(**greedy).size(), 4u);
  auto next = (*greedy)->Next();
  EXPECT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace planorder::core
