// Regression tests for the shared bench flag parser (bench/bench_flags.h):
// every accepted form parses, and — the regression that motivated the file —
// EVERY parse-failure path dies printing the one full usage string, which
// must list the complete flag set including --k and --weights-seed.

#include "../bench/bench_flags.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace planorder::bench {
namespace {

BenchFlags Parse(std::vector<std::string> args) {
  std::vector<std::string> storage;
  storage.push_back("bench_under_test");
  for (std::string& arg : args) storage.push_back(std::move(arg));
  std::vector<char*> argv;
  argv.reserve(storage.size());
  for (std::string& arg : storage) argv.push_back(arg.data());
  return ParseBenchFlags(static_cast<int>(argv.size()), argv.data(),
                         "default.json", {1, 2}, 3, {10});
}

TEST(BenchFlagsTest, DefaultsSurviveAnEmptyCommandLine) {
  const BenchFlags flags = Parse({});
  EXPECT_EQ(flags.output, "default.json");
  EXPECT_EQ(flags.threads, (std::vector<int>{1, 2}));
  EXPECT_EQ(flags.repeats, 3);
  EXPECT_EQ(flags.ks, (std::vector<int>{10}));
  EXPECT_EQ(flags.weights_seed, 1u);
}

TEST(BenchFlagsTest, EveryAcceptedFormParses) {
  const BenchFlags flags =
      Parse({"out.json", "--threads=1,2,8", "--repeats=5", "--k=1,10,100",
             "--weights-seed=42"});
  EXPECT_EQ(flags.output, "out.json");
  EXPECT_EQ(flags.threads, (std::vector<int>{1, 2, 8}));
  EXPECT_EQ(flags.repeats, 5);
  EXPECT_EQ(flags.ks, (std::vector<int>{1, 10, 100}));
  EXPECT_EQ(flags.weights_seed, 42u);
}

TEST(BenchFlagsTest, UsageStringListsTheFullFlagSet) {
  const std::string usage = BenchUsage("b");
  EXPECT_NE(usage.find("--threads="), std::string::npos);
  EXPECT_NE(usage.find("--repeats="), std::string::npos);
  EXPECT_NE(usage.find("--k="), std::string::npos);
  EXPECT_NE(usage.find("--weights-seed="), std::string::npos);
}

TEST(BenchFlagsTest, DegradedParallelismFlagsOversubscription) {
  const unsigned hardware = std::thread::hardware_concurrency();
  if (hardware == 0) GTEST_SKIP() << "hardware_concurrency unknown here";

  // At or below the hardware thread count: honest parallelism.
  BenchFlags sane;
  sane.threads = {1, int(hardware)};
  EXPECT_FALSE(DegradedParallelism(sane));
  EXPECT_NE(HostMetadataJson(sane).find("\"degraded_parallelism\": false"),
            std::string::npos);

  // One past it: the sweep oversubscribes, and the artifact must say so —
  // the JSON outlives the stderr warning.
  BenchFlags oversubscribed;
  oversubscribed.threads = {1, int(hardware) + 1};
  EXPECT_TRUE(DegradedParallelism(oversubscribed));
  EXPECT_NE(HostMetadataJson(oversubscribed)
                .find("\"degraded_parallelism\": true"),
            std::string::npos);

  // No thread sweep at all: nothing to oversubscribe.
  BenchFlags empty;
  EXPECT_FALSE(DegradedParallelism(empty));
}

TEST(BenchFlagsTest, OversubscribedParseWarnsOnStderr) {
  const unsigned hardware = std::thread::hardware_concurrency();
  if (hardware == 0) GTEST_SKIP() << "hardware_concurrency unknown here";
  testing::internal::CaptureStderr();
  const BenchFlags flags =
      Parse({"--threads=" + std::to_string(hardware + 4)});
  const std::string stderr_text = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(DegradedParallelism(flags));
  EXPECT_NE(stderr_text.find("degraded_parallelism"), std::string::npos)
      << "no oversubscription warning reached stderr: " << stderr_text;

  testing::internal::CaptureStderr();
  Parse({"--threads=1"});
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

// The regex asserted on every death: the full usage line (with the PR-6
// flags) must reach stderr no matter which path failed.
constexpr const char* kUsagePattern =
    "usage: .*--threads=.*--repeats=.*--k=.*--weights-seed=";

TEST(BenchFlagsDeathTest, UnknownFlagDiesWithUsage) {
  EXPECT_DEATH(Parse({"--bogus=1"}), kUsagePattern);
}

TEST(BenchFlagsDeathTest, SecondPositionalArgumentDiesWithUsage) {
  EXPECT_DEATH(Parse({"a.json", "b.json"}), kUsagePattern);
}

TEST(BenchFlagsDeathTest, NonNumericListEntryDiesWithUsage) {
  EXPECT_DEATH(Parse({"--threads=abc"}), kUsagePattern);
}

TEST(BenchFlagsDeathTest, EmptyListEntryDiesWithUsage) {
  EXPECT_DEATH(Parse({"--threads=1,,2"}), kUsagePattern);
}

TEST(BenchFlagsDeathTest, EmptyListDiesWithUsage) {
  EXPECT_DEATH(Parse({"--k="}), kUsagePattern);
}

TEST(BenchFlagsDeathTest, ZeroValueDiesWithUsage) {
  EXPECT_DEATH(Parse({"--threads=0"}), kUsagePattern);
}

TEST(BenchFlagsDeathTest, NonNumericRepeatsDiesWithUsage) {
  EXPECT_DEATH(Parse({"--repeats=x"}), kUsagePattern);
}

TEST(BenchFlagsDeathTest, ZeroRepeatsDiesWithUsage) {
  EXPECT_DEATH(Parse({"--repeats=0"}), kUsagePattern);
}

TEST(BenchFlagsDeathTest, OverflowingValueDiesWithUsage) {
  EXPECT_DEATH(Parse({"--repeats=99999999999"}), kUsagePattern);
}

TEST(BenchFlagsDeathTest, NonNumericSeedDiesWithUsage) {
  EXPECT_DEATH(Parse({"--weights-seed=deadbeef"}), kUsagePattern);
}

}  // namespace
}  // namespace planorder::bench
