#include "datalog/canonicalize.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "datalog/containment.h"
#include "datalog/parser.h"

namespace planorder::datalog {
namespace {

ConjunctiveQuery MustParse(std::string_view text) {
  auto rule = ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  return *rule;
}

TEST(CanonicalizeTest, DeterministicOnRepeatedCalls) {
  const ConjunctiveQuery q =
      MustParse("Q(X,Y) :- edge(X,Z), edge(Z,Y), label(Z,red).");
  const CanonicalQuery a = CanonicalizeQuery(q);
  const CanonicalQuery b = CanonicalizeQuery(q);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.query.ToString(), b.query.ToString());
}

TEST(CanonicalizeTest, VariableRenamingsCollapse) {
  const CanonicalQuery a =
      CanonicalizeQuery(MustParse("Q(X,Y) :- edge(X,Z), edge(Z,Y)."));
  const CanonicalQuery b =
      CanonicalizeQuery(MustParse("Q(A,B) :- edge(A,M), edge(M,B)."));
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.hash, b.hash);
}

TEST(CanonicalizeTest, BodyPermutationsCollapse) {
  const CanonicalQuery a = CanonicalizeQuery(
      MustParse("Q(X) :- play-in(X,M), review-of(R,M), good(R)."));
  const CanonicalQuery b = CanonicalizeQuery(
      MustParse("Q(X) :- good(R), review-of(R,M), play-in(X,M)."));
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.hash, b.hash);
}

TEST(CanonicalizeTest, RenamedAndPermutedIsomorphsCollapse) {
  const CanonicalQuery a = CanonicalizeQuery(
      MustParse("Q(X,Y) :- r(X,U), s(U,V), r(V,Y)."));
  const CanonicalQuery b = CanonicalizeQuery(
      MustParse("Q(P,W) :- r(B,W), s(A,B), r(P,A)."));
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.hash, b.hash);
}

TEST(CanonicalizeTest, HeadPredicateNameIsIrrelevant) {
  const CanonicalQuery a = CanonicalizeQuery(MustParse("Q(X) :- r(X)."));
  const CanonicalQuery b = CanonicalizeQuery(MustParse("Answer(X) :- r(X)."));
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.query.head.predicate, "q");
}

TEST(CanonicalizeTest, HeadArgumentOrderMatters) {
  // Q(X,Y) and Q(Y,X) return transposed answer tuples — not isomorphic.
  const CanonicalQuery a =
      CanonicalizeQuery(MustParse("Q(X,Y) :- edge(X,Y)."));
  const CanonicalQuery b =
      CanonicalizeQuery(MustParse("Q(Y,X) :- edge(X,Y)."));
  EXPECT_NE(a.key, b.key);
}

TEST(CanonicalizeTest, ConstantsDiscriminate) {
  const CanonicalQuery a =
      CanonicalizeQuery(MustParse("Q(M) :- play-in(ford, M)."));
  const CanonicalQuery b =
      CanonicalizeQuery(MustParse("Q(M) :- play-in(hanks, M)."));
  const CanonicalQuery c =
      CanonicalizeQuery(MustParse("Q(M) :- play-in(X, M)."));
  EXPECT_NE(a.key, b.key);
  EXPECT_NE(a.key, c.key);
  EXPECT_NE(b.key, c.key);
}

TEST(CanonicalizeTest, ConstantsSurviveCanonicalization) {
  const CanonicalQuery a =
      CanonicalizeQuery(MustParse("Q(M) :- play-in('Harrison Ford', M)."));
  bool found = false;
  for (const Atom& atom : a.query.body) {
    for (const Term& term : atom.args) {
      if (term.is_constant() && term.name() == "Harrison Ford") found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CanonicalizeTest, ComparisonSubgoalsCanonicalize) {
  const CanonicalQuery a = CanonicalizeQuery(
      MustParse("Q(X) :- score(X,S), lt(S, 10), neq(X, S)."));
  const CanonicalQuery b = CanonicalizeQuery(
      MustParse("Q(A) :- neq(A, B), score(A,B), lt(B, 10)."));
  EXPECT_EQ(a.key, b.key);
  // The comparison threshold is part of the canonical form.
  const CanonicalQuery c = CanonicalizeQuery(
      MustParse("Q(X) :- score(X,S), lt(S, 11), neq(X, S)."));
  EXPECT_NE(a.key, c.key);
}

TEST(CanonicalizeTest, NonIsomorphicSameShapeQueriesDiffer) {
  // Chain vs fork: same multiset of predicates, different join structure.
  const CanonicalQuery chain =
      CanonicalizeQuery(MustParse("Q(X) :- r(X,Y), r(Y,Z)."));
  const CanonicalQuery fork =
      CanonicalizeQuery(MustParse("Q(X) :- r(X,Y), r(X,Z)."));
  EXPECT_NE(chain.key, fork.key);
}

TEST(CanonicalizeTest, DuplicateAtomsHandled) {
  const CanonicalQuery a =
      CanonicalizeQuery(MustParse("Q(X) :- r(X,Y), r(X,Y)."));
  const CanonicalQuery b =
      CanonicalizeQuery(MustParse("Q(U) :- r(U,V), r(U,V)."));
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.query.body.size(), 2u);
}

TEST(CanonicalizeTest, CanonicalQueryIsEquivalentToOriginal) {
  const ConjunctiveQuery q = MustParse(
      "Q(X,R) :- play-in(X,M), review-of(R,M), lt(R, 5).");
  const CanonicalQuery canonical = CanonicalizeQuery(q);
  // Containment requires matching head predicates, and canonicalization
  // normalizes the head name away; compare under the canonical head name.
  ConjunctiveQuery renamed_head = q;
  renamed_head.head.predicate = canonical.query.head.predicate;
  EXPECT_TRUE(AreEquivalent(renamed_head, canonical.query))
      << "original: " << q.ToString()
      << "\ncanonical: " << canonical.query.ToString();
}

TEST(CanonicalizeTest, RenamingCoversEveryVariable) {
  const ConjunctiveQuery q =
      MustParse("Q(X,Y) :- edge(X,Z), edge(Z,Y), label(Z,red).");
  const CanonicalQuery canonical = CanonicalizeQuery(q);
  std::set<std::string> originals;
  for (const Term& t : q.head.args) {
    if (t.is_variable()) originals.insert(t.name());
  }
  for (const Atom& atom : q.body) {
    for (const Term& t : atom.args) {
      if (t.is_variable()) originals.insert(t.name());
    }
  }
  for (const std::string& name : originals) {
    EXPECT_TRUE(canonical.renaming.count(name)) << name;
  }
  // Distinct originals map to distinct canonical names (a bijection).
  std::set<std::string> images;
  for (const auto& [from, to] : canonical.renaming) images.insert(to);
  EXPECT_EQ(images.size(), canonical.renaming.size());
}

TEST(CanonicalizeTest, HashesOfDistinctClassesDiffer) {
  // Not guaranteed in theory (64-bit hash), but these few must not collide
  // or the cache would thrash on its own test corpus.
  const std::set<uint64_t> hashes = {
      CanonicalizeQuery(MustParse("Q(X) :- r(X,Y).")).hash,
      CanonicalizeQuery(MustParse("Q(X) :- r(Y,X).")).hash,
      CanonicalizeQuery(MustParse("Q(X) :- r(X,X).")).hash,
      CanonicalizeQuery(MustParse("Q(X) :- r(X,Y), s(Y).")).hash,
      CanonicalizeQuery(MustParse("Q(X) :- s(X).")).hash,
  };
  EXPECT_EQ(hashes.size(), 5u);
}

TEST(CanonicalizeTest, LargeBodyStillDeterministic) {
  // Past kExactCanonicalizationLimit atoms the search degrades to greedy;
  // it must stay deterministic (same input -> same key), which is all the
  // cache requires for correctness (equality is still verified on hit).
  std::string text = "Q(X0) :- ";
  for (int i = 0; i < 14; ++i) {
    if (i > 0) text += ", ";
    text += "e" + std::to_string(i % 3) + "(X" + std::to_string(i) + ",X" +
            std::to_string(i + 1) + ")";
  }
  text += ".";
  const CanonicalQuery a = CanonicalizeQuery(MustParse(text));
  const CanonicalQuery b = CanonicalizeQuery(MustParse(text));
  EXPECT_EQ(a.key, b.key);
}

}  // namespace
}  // namespace planorder::datalog
