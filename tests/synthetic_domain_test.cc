#include "exec/synthetic_domain.h"

#include <gtest/gtest.h>

#include "datalog/evaluator.h"
#include "reformulation/bucket.h"
#include "reformulation/rewriting.h"
#include "utility/coverage_model.h"

namespace planorder::exec {
namespace {

stats::WorkloadOptions SmallOptions() {
  stats::WorkloadOptions options;
  options.query_length = 3;
  options.bucket_size = 5;
  options.overlap_rate = 0.4;
  options.regions_per_bucket = 8;
  options.seed = 31;
  return options;
}

TEST(SyntheticDomainTest, ShapeAndAlignment) {
  auto domain = BuildSyntheticDomain(SmallOptions(), /*num_answers=*/200);
  ASSERT_TRUE(domain.ok()) << domain.status();
  const SyntheticDomain& d = **domain;
  EXPECT_EQ(d.workload.num_buckets(), 3);
  EXPECT_EQ(d.query.body.size(), 3u);
  EXPECT_EQ(d.catalog.num_sources(), 15);
  EXPECT_EQ(d.num_answers, 200u);
  for (int b = 0; b < 3; ++b) {
    ASSERT_EQ(d.source_ids[b].size(), 5u);
    for (int i = 0; i < 5; ++i) {
      // Honest statistics: believed cardinality equals materialized count
      // (or 1 for empty sources).
      const auto& name = d.catalog.source(d.source_ids[b][i]).name;
      const size_t actual = d.source_facts.TuplesFor(name).size();
      EXPECT_DOUBLE_EQ(d.workload.source(b, i).cardinality,
                       std::max<size_t>(actual, 1));
    }
  }
}

TEST(SyntheticDomainTest, BucketsOfGeneratedCatalogMatchWorkload) {
  auto domain = BuildSyntheticDomain(SmallOptions(), 50);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  auto buckets = reformulation::BuildBuckets(d.query, d.catalog);
  ASSERT_TRUE(buckets.ok());
  ASSERT_EQ(buckets->buckets.size(), 3u);
  for (int b = 0; b < 3; ++b) {
    EXPECT_EQ(buckets->buckets[b], d.source_ids[b]);
  }
}

TEST(SyntheticDomainTest, EveryPlanIsSoundIdentityViews) {
  auto domain = BuildSyntheticDomain(SmallOptions(), 50);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  auto plan = reformulation::BuildSoundPlan(
      d.query, d.catalog,
      {d.source_ids[0][0], d.source_ids[1][1], d.source_ids[2][2]});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->has_value());
}

TEST(SyntheticDomainTest, PlanResultsAreExactlyTheCoverageBox) {
  // The defining property of the generator: a plan returns exactly the
  // answers whose per-bucket regions fall in its sources' masks, so the
  // coverage model's estimate equals the realized fraction in expectation.
  auto domain = BuildSyntheticDomain(SmallOptions(), 400);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  utility::CoverageModel model(&d.workload);
  utility::ExecutionContext ctx(&d.workload);

  for (const utility::ConcretePlan plan :
       {utility::ConcretePlan{0, 0, 0}, utility::ConcretePlan{1, 2, 3},
        utility::ConcretePlan{4, 4, 4}}) {
    std::vector<datalog::SourceId> choice(3);
    for (int b = 0; b < 3; ++b) choice[b] = d.source_ids[b][plan[b]];
    auto qp = reformulation::BuildSoundPlan(d.query, d.catalog, choice);
    ASSERT_TRUE(qp.ok());
    ASSERT_TRUE(qp->has_value());
    auto tuples = datalog::EvaluateQuery((*qp)->rewriting, d.source_facts);
    ASSERT_TRUE(tuples.ok());
    const double realized = double(tuples->size()) / double(d.num_answers);
    const double estimated = model.EvaluateConcrete(plan, ctx);
    // Multinomial sampling noise at n=400: allow a generous band.
    EXPECT_NEAR(realized, estimated, 0.08)
        << "plan " << plan[0] << plan[1] << plan[2];
  }
}

TEST(SyntheticDomainTest, QueryAnswersOverSchemaFactsAreAllAnswers) {
  auto domain = BuildSyntheticDomain(SmallOptions(), 60);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  auto answers = datalog::EvaluateQuery(d.query, d.schema_facts);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 60u);
}

TEST(SyntheticDomainTest, RejectsBadArguments) {
  EXPECT_FALSE(BuildSyntheticDomain(SmallOptions(), 0).ok());
  stats::WorkloadOptions bad = SmallOptions();
  bad.query_length = 0;
  EXPECT_FALSE(BuildSyntheticDomain(bad, 10).ok());
}

}  // namespace
}  // namespace planorder::exec
