#include "core/abstraction.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace planorder::core {
namespace {

stats::Workload MakeWorkload(int bucket_size, uint64_t seed = 9) {
  stats::WorkloadOptions options;
  options.query_length = 3;
  options.bucket_size = bucket_size;
  options.seed = seed;
  auto w = stats::Workload::Generate(options);
  EXPECT_TRUE(w.ok());
  return std::move(*w);
}

void CheckTree(const AbstractionForest& forest, const stats::Workload& w,
               int bucket, int node, std::set<int>& leaves) {
  const stats::StatSummary& summary = forest.summary(node);
  EXPECT_EQ(summary.bucket, bucket);
  EXPECT_TRUE(std::is_sorted(summary.members.begin(), summary.members.end()));
  if (forest.is_leaf(node)) {
    ASSERT_EQ(summary.members.size(), 1u);
    EXPECT_TRUE(leaves.insert(summary.members[0]).second);
    EXPECT_EQ(forest.leaf_source(node), summary.members[0]);
    EXPECT_TRUE(summary.cardinality.is_point());
    return;
  }
  const stats::StatSummary& left = forest.summary(forest.left(node));
  const stats::StatSummary& right = forest.summary(forest.right(node));
  // Parent members = union of children.
  std::vector<int> merged;
  std::merge(left.members.begin(), left.members.end(), right.members.begin(),
             right.members.end(), std::back_inserter(merged));
  EXPECT_EQ(summary.members, merged);
  // Parent stats hull the children.
  EXPECT_TRUE(summary.cardinality.Contains(left.cardinality));
  EXPECT_TRUE(summary.cardinality.Contains(right.cardinality));
  EXPECT_TRUE(summary.mask_union.Contains(left.mask_union));
  EXPECT_TRUE(right.mask_intersection.Contains(summary.mask_intersection));
  CheckTree(forest, w, bucket, forest.left(node), leaves);
  CheckTree(forest, w, bucket, forest.right(node), leaves);
}

class AbstractionForestTest
    : public ::testing::TestWithParam<AbstractionHeuristic> {};

TEST_P(AbstractionForestTest, TreesPartitionEveryBucket) {
  stats::Workload w = MakeWorkload(7);
  const PlanSpace space = PlanSpace::FullSpace(w);
  const AbstractionForest forest =
      AbstractionForest::Build(w, space, GetParam(), /*seed=*/3);
  ASSERT_EQ(forest.num_buckets(), 3);
  for (int b = 0; b < 3; ++b) {
    std::set<int> leaves;
    CheckTree(forest, w, b, forest.root(b), leaves);
    EXPECT_EQ(leaves.size(), 7u);  // every source appears exactly once
  }
}

TEST_P(AbstractionForestTest, WorksOnSubspaces) {
  stats::Workload w = MakeWorkload(6);
  PlanSpace space;
  space.buckets = {{1, 3, 5}, {0}, {2, 4}};
  const AbstractionForest forest =
      AbstractionForest::Build(w, space, GetParam(), /*seed=*/4);
  EXPECT_EQ(forest.summary(forest.root(0)).members, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(forest.summary(forest.root(1)).members, (std::vector<int>{0}));
  EXPECT_TRUE(forest.is_leaf(forest.root(1)));
  EXPECT_EQ(forest.summary(forest.root(2)).members, (std::vector<int>{2, 4}));
}

INSTANTIATE_TEST_SUITE_P(
    Heuristics, AbstractionForestTest,
    ::testing::Values(AbstractionHeuristic::kByCardinality,
                      AbstractionHeuristic::kByMaskSimilarity,
                      AbstractionHeuristic::kRandom));

TEST(AbstractionHeuristicTest, ByCardinalityGroupsSimilarCardinalities) {
  stats::Workload w = MakeWorkload(8);
  const PlanSpace space = PlanSpace::FullSpace(w);
  const AbstractionForest forest = AbstractionForest::Build(
      w, space, AbstractionHeuristic::kByCardinality);
  // Any inner node's cardinality interval must be at most the bucket-wide
  // spread, and first-level groups should be tighter than the root.
  for (int b = 0; b < 3; ++b) {
    const int root = forest.root(b);
    const double root_width = forest.summary(root).cardinality.width();
    const double left_width =
        forest.summary(forest.left(root)).cardinality.width();
    const double right_width =
        forest.summary(forest.right(root)).cardinality.width();
    EXPECT_LE(left_width, root_width);
    EXPECT_LE(right_width, root_width);
    // Sorted grouping: the two halves split the cardinality range.
    EXPECT_LE(forest.summary(forest.left(root)).cardinality.hi(),
              forest.summary(forest.right(root)).cardinality.lo() + 1e-9);
  }
}

TEST(AbstractPlanTest, ConcretenessAndConversion) {
  stats::Workload w = MakeWorkload(4);
  const PlanSpace space = PlanSpace::FullSpace(w);
  const AbstractionForest forest = AbstractionForest::Build(
      w, space, AbstractionHeuristic::kByCardinality);
  AbstractPlan top;
  top.forest = &forest;
  for (int b = 0; b < 3; ++b) top.nodes.push_back(forest.root(b));
  EXPECT_FALSE(top.IsConcrete());
  EXPECT_EQ(top.NumConcretePlans(), 64u);
  ASSERT_EQ(top.Summaries().size(), 3u);

  // Walk to leaves.
  AbstractPlan leafy = top;
  for (int b = 0; b < 3; ++b) {
    int node = leafy.nodes[b];
    while (!forest.is_leaf(node)) node = forest.left(node);
    leafy.nodes[b] = node;
  }
  EXPECT_TRUE(leafy.IsConcrete());
  EXPECT_EQ(leafy.NumConcretePlans(), 1u);
  const ConcretePlan concrete = leafy.ToConcrete();
  for (int b = 0; b < 3; ++b) {
    EXPECT_EQ(concrete[b], forest.leaf_source(leafy.nodes[b]));
  }
}

TEST(AbstractionForestTest, SingletonBucketIsLeafRoot) {
  stats::Workload w = MakeWorkload(1);
  const PlanSpace space = PlanSpace::FullSpace(w);
  const AbstractionForest forest = AbstractionForest::Build(
      w, space, AbstractionHeuristic::kByCardinality);
  for (int b = 0; b < 3; ++b) {
    EXPECT_TRUE(forest.is_leaf(forest.root(b)));
  }
}

}  // namespace
}  // namespace planorder::core
