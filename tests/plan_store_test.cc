#include "adaptive/plan_store.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace planorder::adaptive {
namespace {

/// Unique per-test path in the ctest working directory; removed on teardown.
class StoreFile {
 public:
  explicit StoreFile(const std::string& name)
      : path_("plan_store_test_" + name + ".planstore") {
    std::remove(path_.c_str());
  }
  ~StoreFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

StoreContents MakeContents() {
  StoreContents contents;
  contents.num_sources = 6;

  StoredReformulation entry;
  entry.canonical_text = "q(X0,X1) :- p0(X0), p1(X0,X1).";
  entry.buckets = {{0, 2, 4}, {1, 5}};
  stats::SourceStats s0;
  s0.cardinality = 123.456789;
  s0.transmission_cost = 0.1 + 0.2;  // deliberately not exactly 0.3
  s0.failure_prob = 1.0 / 3.0;
  s0.fee = 1e-7;
  s0.regions.bits = 0xdeadbeefULL;
  stats::SourceStats s1;
  s1.cardinality = 1e12;
  s1.transmission_cost = 5e-324;  // denormal min: hexfloat must survive it
  s1.failure_prob = 0.95;
  s1.fee = 2.5;
  s1.regions.bits = 0x1;
  entry.stat_buckets = {{s0, s1, s0}, {s1, s0}};
  entry.region_weights = {{0.25, 1.0 / 7.0}, {3.14159265358979}};
  entry.domain_sizes = {100.5, 7.0};
  entry.access_overhead = 5.0;
  contents.entries.push_back(entry);

  StoredReformulation second = entry;
  second.canonical_text = "q(X0) :- p0(X0).";
  second.buckets = {{3}};
  second.stat_buckets = {{s1}};
  second.region_weights = {{0.5}};
  second.domain_sizes = {42.0};
  contents.entries.push_back(second);

  SourceEstimate estimate;
  estimate.windows = 9;
  estimate.card_windows = 7;
  estimate.calls = 31;
  estimate.cardinality = 17.000000000000004;
  estimate.latency_ms = 2.75;
  estimate.failure_prob = 0.125;
  contents.observed.emplace_back("src_a", estimate);
  estimate.windows = 1;
  estimate.cardinality = 0.001;
  contents.observed.emplace_back("src_b", estimate);
  return contents;
}

void ExpectSameContents(const StoreContents& got, const StoreContents& want) {
  EXPECT_EQ(got.num_sources, want.num_sources);
  ASSERT_EQ(got.entries.size(), want.entries.size());
  for (size_t e = 0; e < want.entries.size(); ++e) {
    const StoredReformulation& a = got.entries[e];
    const StoredReformulation& b = want.entries[e];
    EXPECT_EQ(a.canonical_text, b.canonical_text);
    EXPECT_EQ(a.buckets, b.buckets);
    ASSERT_EQ(a.stat_buckets.size(), b.stat_buckets.size());
    for (size_t i = 0; i < b.stat_buckets.size(); ++i) {
      ASSERT_EQ(a.stat_buckets[i].size(), b.stat_buckets[i].size());
      for (size_t j = 0; j < b.stat_buckets[i].size(); ++j) {
        // Bit-exact round trip: the whole point of the hexfloat format.
        EXPECT_EQ(a.stat_buckets[i][j].cardinality,
                  b.stat_buckets[i][j].cardinality);
        EXPECT_EQ(a.stat_buckets[i][j].transmission_cost,
                  b.stat_buckets[i][j].transmission_cost);
        EXPECT_EQ(a.stat_buckets[i][j].failure_prob,
                  b.stat_buckets[i][j].failure_prob);
        EXPECT_EQ(a.stat_buckets[i][j].fee, b.stat_buckets[i][j].fee);
        EXPECT_EQ(a.stat_buckets[i][j].regions.bits,
                  b.stat_buckets[i][j].regions.bits);
      }
    }
    EXPECT_EQ(a.region_weights, b.region_weights);
    EXPECT_EQ(a.domain_sizes, b.domain_sizes);
    EXPECT_EQ(a.access_overhead, b.access_overhead);
  }
  ASSERT_EQ(got.observed.size(), want.observed.size());
  for (size_t i = 0; i < want.observed.size(); ++i) {
    EXPECT_EQ(got.observed[i].first, want.observed[i].first);
    EXPECT_EQ(got.observed[i].second.windows, want.observed[i].second.windows);
    EXPECT_EQ(got.observed[i].second.card_windows,
              want.observed[i].second.card_windows);
    EXPECT_EQ(got.observed[i].second.calls, want.observed[i].second.calls);
    EXPECT_EQ(got.observed[i].second.cardinality,
              want.observed[i].second.cardinality);
    EXPECT_EQ(got.observed[i].second.latency_ms,
              want.observed[i].second.latency_ms);
    EXPECT_EQ(got.observed[i].second.failure_prob,
              want.observed[i].second.failure_prob);
  }
}

TEST(PlanStoreTest, SaveLoadRoundTripsBitExactly) {
  StoreFile file("roundtrip");
  PlanStore store(file.path());
  const StoreContents contents = MakeContents();
  ASSERT_TRUE(store.Save(contents).ok());

  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ExpectSameContents(*loaded, contents);

  // Saving what was loaded reproduces the identical file: a fixpoint, which
  // is what "bit-exact round trip" means end to end.
  StoreFile copy("roundtrip_copy");
  PlanStore second(copy.path());
  ASSERT_TRUE(second.Save(*loaded).ok());
  std::ifstream a(file.path()), b(copy.path());
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(PlanStoreTest, MissingFileIsNotFoundNotCorruption) {
  PlanStore store("plan_store_test_never_written.planstore");
  auto loaded = store.Load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(PlanStoreTest, TruncationIsDetected) {
  StoreFile file("truncate");
  PlanStore store(file.path());
  ASSERT_TRUE(store.Save(MakeContents()).ok());

  std::ifstream in(file.path());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string full = buffer.str();
  in.close();

  // Every cut that loses payload or checksum digits must be rejected. (A cut
  // of exactly the trailing newline is the one prefix that still parses: the
  // checksum line itself is complete, so the store is intact.)
  for (size_t keep : {size_t(0), size_t(10), full.size() / 2,
                      full.size() - 2}) {
    std::ofstream out(file.path(), std::ios::trunc);
    out << full.substr(0, keep);
    out.close();
    auto loaded = store.Load();
    ASSERT_FALSE(loaded.ok()) << "prefix of " << keep << " bytes parsed";
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(PlanStoreTest, BitFlipFailsTheChecksum) {
  StoreFile file("corrupt");
  PlanStore store(file.path());
  ASSERT_TRUE(store.Save(MakeContents()).ok());

  std::ifstream in(file.path());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string data = buffer.str();
  in.close();
  // Flip one payload byte (inside the first entry's numbers, well before the
  // checksum line).
  data[data.size() / 2] ^= 0x4;
  std::ofstream out(file.path(), std::ios::trunc);
  out << data;
  out.close();

  auto loaded = store.Load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanStoreTest, VersionMismatchIsRejected) {
  StoreFile file("version");
  std::ofstream out(file.path());
  out << "planorder-planstore v999\nsources 0\nobserved 0\nentries 0\n";
  out.close();
  PlanStore store(file.path());
  auto loaded = store.Load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanStoreTest, SaveRejectsUnserializableNames) {
  StoreFile file("badnames");
  PlanStore store(file.path());
  StoreContents contents = MakeContents();
  contents.observed[0].first = "has space";
  EXPECT_FALSE(store.Save(contents).ok());

  contents = MakeContents();
  contents.entries[0].canonical_text = "line one\nline two";
  EXPECT_FALSE(store.Save(contents).ok());
}

TEST(PlanStoreTest, EmptyStoreRoundTrips) {
  StoreFile file("empty");
  PlanStore store(file.path());
  StoreContents contents;
  contents.num_sources = 0;
  ASSERT_TRUE(store.Save(contents).ok());
  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->entries.size(), 0u);
  EXPECT_EQ(loaded->observed.size(), 0u);
}

}  // namespace
}  // namespace planorder::adaptive
