#include "exec/pipeline.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "exec/synthetic_domain.h"
#include "reformulation/statistics.h"

namespace planorder::exec {
namespace {

using datalog::ParseRule;

class PipelineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    stats::WorkloadOptions options;
    options.query_length = 2;
    options.bucket_size = 4;
    options.overlap_rate = 0.4;
    options.regions_per_bucket = 8;
    options.seed = 77;
    auto domain = BuildSyntheticDomain(options, /*num_answers=*/150);
    ASSERT_TRUE(domain.ok());
    domain_ = std::move(*domain);
  }

  std::unique_ptr<SyntheticDomain> domain_;
};

TEST_F(PipelineFixture, AutoSelectsPerPaperGuidance) {
  struct Case {
    utility::MeasureKind measure;
    const char* expected;
  };
  const Case cases[] = {
      {utility::MeasureKind::kAdditive, "greedy"},        // fully monotonic
      {utility::MeasureKind::kCoverage, "streamer"},      // DR holds
      {utility::MeasureKind::kFailureNoCache, "streamer"},
      {utility::MeasureKind::kFailureCache, "idrips"},    // DR fails
      {utility::MeasureKind::kMonetaryCache, "idrips"},
  };
  for (const Case& c : cases) {
    OrderingPipeline::Options options;
    options.measure = c.measure;
    auto pipeline = OrderingPipeline::Create(&domain_->catalog, domain_->query,
                                             &domain_->workload, options);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status();
    EXPECT_EQ((*pipeline)->algorithm_name(), c.expected)
        << utility::MeasureKindName(c.measure);
  }
}

TEST_F(PipelineFixture, StreamsExecutableRewritingsInOrder) {
  OrderingPipeline::Options options;
  options.measure = utility::MeasureKind::kFailureNoCache;
  auto pipeline = OrderingPipeline::Create(&domain_->catalog, domain_->query,
                                           &domain_->workload, options);
  ASSERT_TRUE(pipeline.ok());
  double last = 1e300;
  int emitted = 0;
  while (true) {
    auto next = (*pipeline)->Next();
    if (!next.ok()) {
      EXPECT_EQ(next.status().code(), StatusCode::kNotFound);
      break;
    }
    ++emitted;
    EXPECT_LE(next->utility, last + 1e-12);
    last = next->utility;
    EXPECT_TRUE(next->plan.rewriting.ValidateSafety().ok());
    EXPECT_EQ(next->plan.rewriting.body.size(), 2u);
  }
  EXPECT_EQ(emitted, 16);  // 4 x 4, identity views: all sound
  EXPECT_GT((*pipeline)->plan_evaluations(), 0);
}

TEST_F(PipelineFixture, RespectsBindingPatterns) {
  // Make every bucket-1 source require its first argument bound: plans stay
  // executable (bucket 0 binds it), and the rewriting orders bucket 0 first.
  for (datalog::SourceId id : domain_->source_ids[1]) {
    ASSERT_TRUE(domain_->catalog.SetBindingPattern(id, "bf").ok());
  }
  OrderingPipeline::Options options;
  options.measure = utility::MeasureKind::kCost2;
  auto pipeline = OrderingPipeline::Create(&domain_->catalog, domain_->query,
                                           &domain_->workload, options);
  ASSERT_TRUE(pipeline.ok());
  auto next = (*pipeline)->Next();
  ASSERT_TRUE(next.ok()) << next.status();
  // First atom must be a bucket-0 source (name prefix v0_).
  EXPECT_EQ(next->plan.rewriting.body[0].predicate.substr(0, 3), "v0_");
}

TEST_F(PipelineFixture, ExplicitAlgorithmOverridesAuto) {
  OrderingPipeline::Options options;
  options.measure = utility::MeasureKind::kCoverage;
  options.algorithm = OrderingPipeline::Algorithm::kPi;
  auto pipeline = OrderingPipeline::Create(&domain_->catalog, domain_->query,
                                           &domain_->workload, options);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_EQ((*pipeline)->algorithm_name(), "pi");
}

TEST_F(PipelineFixture, RejectsMisalignedWorkload) {
  // A workload with the wrong bucket structure is rejected up front.
  stats::WorkloadOptions options;
  options.query_length = 3;  // query has 2 subgoals
  options.bucket_size = 4;
  options.seed = 5;
  auto wrong = stats::Workload::Generate(options);
  ASSERT_TRUE(wrong.ok());
  auto pipeline = OrderingPipeline::Create(
      &domain_->catalog, domain_->query, &*wrong, OrderingPipeline::Options{});
  EXPECT_FALSE(pipeline.ok());
}

TEST_F(PipelineFixture, WorksWithEstimatedStatistics) {
  // The full adoptable path: estimate statistics from the instances, then
  // stream plans — coverage ordering over estimated stats.
  auto buckets =
      reformulation::BuildBuckets(domain_->query, domain_->catalog);
  ASSERT_TRUE(buckets.ok());
  auto estimated = reformulation::EstimateWorkloadFromInstances(
      domain_->query, domain_->catalog, *buckets, domain_->source_facts);
  ASSERT_TRUE(estimated.ok());
  OrderingPipeline::Options options;
  options.measure = utility::MeasureKind::kCoverage;
  auto pipeline = OrderingPipeline::Create(&domain_->catalog, domain_->query,
                                           &*estimated, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  EXPECT_EQ((*pipeline)->algorithm_name(), "streamer");
  auto next = (*pipeline)->Next();
  ASSERT_TRUE(next.ok());
  EXPECT_GT(next->utility, 0.0);
}

}  // namespace
}  // namespace planorder::exec
