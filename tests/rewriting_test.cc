#include "reformulation/rewriting.h"

#include <set>

#include <gtest/gtest.h>

#include "datalog/containment.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"

namespace planorder::reformulation {
namespace {

using datalog::Catalog;
using datalog::ConjunctiveQuery;
using datalog::ParseAtom;
using datalog::ParseRule;

Catalog MovieCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog.schema().AddRelation("play-in", 2).ok());
  EXPECT_TRUE(catalog.schema().AddRelation("review-of", 2).ok());
  EXPECT_TRUE(catalog.schema().AddRelation("american", 1).ok());
  EXPECT_TRUE(catalog.schema().AddRelation("russian", 1).ok());
  for (const char* text : {
           "v1(A,M) :- play-in(A,M), american(M)",
           "v2(A,M) :- play-in(A,M), russian(M)",
           "v3(A,M) :- play-in(A,M)",
           "v4(R,M) :- review-of(R,M)",
           "v5(R,M) :- review-of(R,M)",
           "v6(R,M) :- review-of(R,M)",
       }) {
    EXPECT_TRUE(catalog.AddSourceFromText(text).ok());
  }
  return catalog;
}

ConjunctiveQuery MovieQuery() {
  auto q = ParseRule("q(M,R) :- play-in(ford,M), review-of(R,M)");
  EXPECT_TRUE(q.ok());
  return *q;
}

TEST(BuildSoundPlanTest, MovieDomainPlanV1V4) {
  Catalog catalog = MovieCatalog();
  auto plan = BuildSoundPlan(MovieQuery(), catalog, {0, 3});
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(plan->has_value());
  EXPECT_EQ((*plan)->rewriting.body.size(), 2u);
  EXPECT_EQ((*plan)->rewriting.body[0].predicate, "v1");
  EXPECT_EQ((*plan)->rewriting.body[1].predicate, "v4");
  // The rewriting carries the constant binding: v1(ford, M).
  EXPECT_EQ((*plan)->rewriting.body[0].args[0],
            datalog::Term::Constant("ford"));
}

TEST(BuildSoundPlanTest, AllNineMovieCombinationsAreSound) {
  Catalog catalog = MovieCatalog();
  const ConjunctiveQuery query = MovieQuery();
  for (datalog::SourceId a : {0, 1, 2}) {
    for (datalog::SourceId r : {3, 4, 5}) {
      auto plan = BuildSoundPlan(query, catalog, {a, r});
      ASSERT_TRUE(plan.ok());
      EXPECT_TRUE(plan->has_value()) << "combo " << a << "," << r;
    }
  }
}

TEST(BuildSoundPlanTest, RejectsUnsoundCombination) {
  // A source whose view is *more general* than the subgoal pattern requires
  // the expansion-containment test to fail when it cannot enforce a join.
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  ASSERT_TRUE(catalog.schema().AddRelation("r", 2).ok());
  // v_pair exports only the endpoints of the join; the join variable B is
  // projected away, so p(A,B), r(B,C) cannot be enforced soundly by
  // combining two *separate* uses... build a source that loses the join:
  ASSERT_TRUE(catalog.AddSourceFromText("vp(A) :- p(A, B)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vr(C) :- r(B, C)").ok());
  auto q = ParseRule("q(A,C) :- p(A,B), r(B,C)");
  ASSERT_TRUE(q.ok());
  auto plan = BuildSoundPlan(*q, catalog, {0, 1});
  ASSERT_TRUE(plan.ok());
  // The assembled rewriting q(A,C) :- vp(A), vr(C) loses the join on B:
  // its expansion is not contained in the query.
  EXPECT_FALSE(plan->has_value());
}

TEST(ExpandPlanTest, ExpansionContainsViewBodies) {
  Catalog catalog = MovieCatalog();
  auto plan = BuildSoundPlan(MovieQuery(), catalog, {0, 3});
  ASSERT_TRUE(plan.ok() && plan->has_value());
  auto expansion = ExpandPlan(**plan, catalog);
  ASSERT_TRUE(expansion.ok()) << expansion.status();
  // v1 contributes play-in + american, v4 contributes review-of.
  ASSERT_EQ(expansion->body.size(), 3u);
  EXPECT_EQ(expansion->body[0].predicate, "play-in");
  EXPECT_EQ(expansion->body[1].predicate, "american");
  EXPECT_EQ(expansion->body[2].predicate, "review-of");
  // And the expansion is contained in the query (soundness witness).
  EXPECT_TRUE(datalog::IsContainedIn(*expansion, MovieQuery()));
}

TEST(EnumerateSoundPlansTest, MovieDomainYieldsNinePlans) {
  Catalog catalog = MovieCatalog();
  auto plans = EnumerateSoundPlans(MovieQuery(), catalog);
  ASSERT_TRUE(plans.ok()) << plans.status();
  EXPECT_EQ(plans->size(), 9u);
}

TEST(EnumerateSoundPlansTest, EmptyWhenSubgoalUnserved) {
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 1).ok());
  ASSERT_TRUE(catalog.schema().AddRelation("r", 1).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v(A) :- p(A)").ok());
  auto q = ParseRule("q(A) :- p(A), r(A)");
  ASSERT_TRUE(q.ok());
  auto plans = EnumerateSoundPlans(*q, catalog);
  ASSERT_TRUE(plans.ok());
  EXPECT_TRUE(plans->empty());
}

TEST(SoundPlansExecuteCorrectly, PlanAnswersAreQueryAnswers) {
  // End-to-end soundness: every tuple produced by a sound plan over source
  // instances consistent with the views is an answer of the query over the
  // underlying database.
  Catalog catalog = MovieCatalog();
  const ConjunctiveQuery query = MovieQuery();

  datalog::Database schema_db;
  auto add = [&](const char* text) {
    auto atom = ParseAtom(text);
    ASSERT_TRUE(atom.ok());
    schema_db.AddFact(*atom);
  };
  add("play-in(ford, witness)");
  add("play-in(ford, 'air force one')");
  add("play-in(kate, titanic)");
  add("american(witness)");
  add("american(titanic)");
  add("review-of(rev1, witness)");
  add("review-of(rev2, 'air force one')");
  add("review-of(rev3, titanic)");

  // Materialize each source as the *full* extension of its view (sources may
  // be incomplete; completeness maximizes what plans can return).
  datalog::Database source_db;
  for (datalog::SourceId id = 0; id < catalog.num_sources(); ++id) {
    auto tuples = datalog::EvaluateQuery(catalog.source(id).view, schema_db);
    ASSERT_TRUE(tuples.ok());
    for (const auto& tuple : *tuples) {
      source_db.AddFact(datalog::Atom(catalog.source(id).name, tuple));
    }
  }

  auto query_answers = datalog::EvaluateQuery(query, schema_db);
  ASSERT_TRUE(query_answers.ok());
  std::set<std::vector<datalog::Term>> answer_set(query_answers->begin(),
                                                  query_answers->end());
  ASSERT_EQ(answer_set.size(), 2u);  // witness, air force one

  auto plans = EnumerateSoundPlans(query, catalog);
  ASSERT_TRUE(plans.ok());
  std::set<std::vector<datalog::Term>> union_of_plans;
  for (const QueryPlan& plan : *plans) {
    auto tuples = datalog::EvaluateQuery(plan.rewriting, source_db);
    ASSERT_TRUE(tuples.ok());
    for (const auto& tuple : *tuples) {
      EXPECT_TRUE(answer_set.contains(tuple))
          << "unsound tuple from " << plan.rewriting.ToString();
      union_of_plans.insert(tuple);
    }
  }
  // With complete sources the union of all sound plans recovers everything.
  EXPECT_EQ(union_of_plans, answer_set);
}

}  // namespace
}  // namespace planorder::reformulation
