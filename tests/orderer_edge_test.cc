/// Edge-case behavior shared by all ordering algorithms: empty inputs,
/// degenerate spaces, heavy ties, exhaustion, and the discard protocol.

#include <functional>

#include <gtest/gtest.h>

#include "test_util.h"

namespace planorder::core {
namespace {

using test::Drain;
using test::MakeWorkload;
using test::Measure;
using test::MustMakeMeasure;

using MakeOrderer = std::function<StatusOr<std::unique_ptr<Orderer>>(
    const stats::Workload*, utility::UtilityModel*, std::vector<PlanSpace>)>;

std::vector<std::pair<std::string, MakeOrderer>> AllOrderers() {
  return {
      {"pi",
       [](const stats::Workload* w, utility::UtilityModel* m,
          std::vector<PlanSpace> s) -> StatusOr<std::unique_ptr<Orderer>> {
         auto o = PiOrderer::Create(w, m, std::move(s));
         if (!o.ok()) return o.status();
         return std::unique_ptr<Orderer>(std::move(*o));
       }},
      {"idrips",
       [](const stats::Workload* w, utility::UtilityModel* m,
          std::vector<PlanSpace> s) -> StatusOr<std::unique_ptr<Orderer>> {
         auto o = IDripsOrderer::Create(w, m, std::move(s));
         if (!o.ok()) return o.status();
         return std::unique_ptr<Orderer>(std::move(*o));
       }},
      {"streamer",
       [](const stats::Workload* w, utility::UtilityModel* m,
          std::vector<PlanSpace> s) -> StatusOr<std::unique_ptr<Orderer>> {
         auto o = StreamerOrderer::Create(w, m, std::move(s));
         if (!o.ok()) return o.status();
         return std::unique_ptr<Orderer>(std::move(*o));
       }},
  };
}

TEST(OrdererEdgeTest, NoSpacesMeansImmediateExhaustion) {
  stats::Workload w = MakeWorkload(2, 3, 0.3, 1);
  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  for (auto& [name, make] : AllOrderers()) {
    auto orderer = make(&w, model.get(), {});
    ASSERT_TRUE(orderer.ok()) << name;
    auto next = (*orderer)->Next();
    EXPECT_FALSE(next.ok()) << name;
    EXPECT_EQ(next.status().code(), StatusCode::kNotFound) << name;
  }
}

TEST(OrdererEdgeTest, EmptyBucketSpacesAreSkipped) {
  stats::Workload w = MakeWorkload(2, 3, 0.3, 2);
  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  PlanSpace empty;
  empty.buckets = {{0, 1}, {}};
  PlanSpace small;
  small.buckets = {{0}, {2}};
  for (auto& [name, make] : AllOrderers()) {
    auto orderer = make(&w, model.get(), {empty, small});
    ASSERT_TRUE(orderer.ok()) << name;
    const auto plans = Drain(**orderer);
    ASSERT_EQ(plans.size(), 1u) << name;
    EXPECT_EQ(plans[0].plan, (utility::ConcretePlan{0, 2})) << name;
  }
}

TEST(OrdererEdgeTest, UnknownSourceIdRejected) {
  stats::Workload w = MakeWorkload(2, 3, 0.3, 3);
  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  PlanSpace bad;
  bad.buckets = {{0, 7}, {0}};
  for (auto& [name, make] : AllOrderers()) {
    auto orderer = make(&w, model.get(), {bad});
    EXPECT_FALSE(orderer.ok()) << name;
    EXPECT_EQ(orderer.status().code(), StatusCode::kInvalidArgument) << name;
  }
}

TEST(OrdererEdgeTest, WrongBucketCountRejected) {
  stats::Workload w = MakeWorkload(3, 3, 0.3, 4);
  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  PlanSpace bad;
  bad.buckets = {{0}, {0}};  // workload has 3 buckets
  for (auto& [name, make] : AllOrderers()) {
    EXPECT_FALSE(make(&w, model.get(), {bad}).ok()) << name;
  }
}

TEST(OrdererEdgeTest, MassTiesStillEmitEveryPlanOnce) {
  // All sources identical: every plan ties. All orderers must still emit
  // each plan exactly once with identical utilities.
  std::vector<std::vector<stats::SourceStats>> buckets(2);
  for (int b = 0; b < 2; ++b) {
    for (int i = 0; i < 4; ++i) {
      stats::SourceStats s;
      s.cardinality = 10;
      s.transmission_cost = 0.5;
      s.regions.bits = 0b0011;
      buckets[b].push_back(s);
    }
  }
  auto w = stats::Workload::FromParts(
      buckets, {std::vector<double>(4, 0.25), std::vector<double>(4, 0.25)},
      1.0, {100.0, 100.0});
  ASSERT_TRUE(w.ok());
  for (Measure measure : {Measure::kCoverage, Measure::kCost2}) {
    auto model = MustMakeMeasure(measure, &*w);
    for (auto& [name, make] : AllOrderers()) {
      auto orderer = make(&*w, model.get(), {PlanSpace::FullSpace(*w)});
      ASSERT_TRUE(orderer.ok()) << name;
      const auto plans = Drain(**orderer);
      ASSERT_EQ(plans.size(), 16u)
          << name << "/" << test::MeasureName(measure);
      std::set<utility::ConcretePlan> unique;
      for (const auto& p : plans) unique.insert(p.plan);
      EXPECT_EQ(unique.size(), 16u)
          << name << "/" << test::MeasureName(measure);
    }
  }
}

TEST(OrdererEdgeTest, ExhaustionIsSticky) {
  stats::Workload w = MakeWorkload(2, 2, 0.3, 5);
  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  for (auto& [name, make] : AllOrderers()) {
    auto orderer = make(&w, model.get(), {PlanSpace::FullSpace(w)});
    ASSERT_TRUE(orderer.ok()) << name;
    EXPECT_EQ(Drain(**orderer).size(), 4u) << name;
    for (int i = 0; i < 3; ++i) {
      auto next = (*orderer)->Next();
      EXPECT_FALSE(next.ok()) << name;
      EXPECT_EQ(next.status().code(), StatusCode::kNotFound) << name;
    }
  }
}

TEST(OrdererEdgeTest, DiscardKeepsContextClean) {
  stats::Workload w = MakeWorkload(2, 3, 0.4, 6);
  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  for (auto& [name, make] : AllOrderers()) {
    auto orderer = make(&w, model.get(), {PlanSpace::FullSpace(w)});
    ASSERT_TRUE(orderer.ok()) << name;
    // Discard before any Next: harmless no-op.
    (*orderer)->ReportDiscarded();
    ASSERT_TRUE((*orderer)->Next().ok()) << name;
    (*orderer)->ReportDiscarded();
    (*orderer)->ReportDiscarded();  // double discard: still a no-op
    EXPECT_EQ((*orderer)->context().epoch(), 0) << name;
    ASSERT_TRUE((*orderer)->Next().ok()) << name;
    ASSERT_TRUE((*orderer)->Next().ok()) << name;
    // Second plan was implicitly executed when the third was requested.
    EXPECT_EQ((*orderer)->context().epoch(), 1) << name;
  }
}

TEST(OrdererEdgeTest, PlainIntervalModeStaysExact) {
  // probe_lower_bounds=false reverts to the paper's plain interval
  // semantics (min-over-members lower bounds, any-member link witnesses).
  // Slower, but the ordering must remain exact.
  stats::Workload w = MakeWorkload(3, 5, 0.4, 8);
  const std::vector<PlanSpace> spaces = {PlanSpace::FullSpace(w)};
  for (Measure measure : {Measure::kCoverage, Measure::kMonetary}) {
    auto ref_model = MustMakeMeasure(measure, &w);
    auto reference = PiOrderer::Create(&w, ref_model.get(), spaces,
                                       /*use_independence=*/false);
    ASSERT_TRUE(reference.ok());
    const auto expected = Drain(**reference);

    auto model = MustMakeMeasure(measure, &w);
    auto streamer = StreamerOrderer::Create(
        &w, model.get(), spaces, AbstractionHeuristic::kByCardinality,
        /*probe_lower_bounds=*/false);
    ASSERT_TRUE(streamer.ok());
    const auto via_streamer = Drain(**streamer);
    ASSERT_EQ(via_streamer.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(via_streamer[i].utility, expected[i].utility, 1e-9)
          << test::MeasureName(measure) << " streamer at " << i;
    }

    auto model2 = MustMakeMeasure(measure, &w);
    auto idrips = IDripsOrderer::Create(
        &w, model2.get(), spaces, AbstractionHeuristic::kByCardinality,
        /*probe_lower_bounds=*/false);
    ASSERT_TRUE(idrips.ok());
    const auto via_idrips = Drain(**idrips);
    ASSERT_EQ(via_idrips.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(via_idrips[i].utility, expected[i].utility, 1e-9)
          << test::MeasureName(measure) << " idrips at " << i;
    }
  }
}

TEST(OrdererEdgeTest, SingleBucketWorkloadOrdersSources) {
  stats::Workload w = MakeWorkload(1, 6, 0.3, 7);
  auto model = MustMakeMeasure(Measure::kCost2, &w);
  for (auto& [name, make] : AllOrderers()) {
    auto orderer = make(&w, model.get(), {PlanSpace::FullSpace(w)});
    ASSERT_TRUE(orderer.ok()) << name;
    const auto plans = Drain(**orderer);
    ASSERT_EQ(plans.size(), 6u) << name;
    for (size_t i = 1; i < plans.size(); ++i) {
      EXPECT_LE(plans[i].utility, plans[i - 1].utility + 1e-12) << name;
    }
  }
}

}  // namespace
}  // namespace planorder::core
