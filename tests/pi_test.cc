// The PI reference orderer (src/core/pi.{h,cc}) and the independence
// machinery it leans on. Three layers of contract:
//
//  - PI with the independence filter emits the same utility sequence as the
//    naive brute force that re-evaluates everything (and, for fully
//    independent measures, the byte-identical plan sequence);
//  - the filter actually saves work: exact evaluation-count accounting on a
//    fully independent measure, monotone accounting on coverage;
//  - the predicates PI and iDrips trust are *sound*: whenever Independent /
//    GroupIndependentOf answers true, executing the other plan must leave the
//    claimed utility (interval) bit-for-bit unaffected — the suffix-walk
//    contract RefreshStaleCandidates fast-forwards epochs with.
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/abstraction.h"
#include "core/plan_space.h"
#include "test_util.h"
#include "utility/execution_context.h"

namespace planorder::core {
namespace {

using test::Drain;
using test::MakeWorkload;
using test::Measure;
using test::MustMakeMeasure;
using utility::ConcretePlan;
using utility::ExecutionContext;

// Utilities that must be "the same number" computed twice along possibly
// different float paths; scale-aware so large cost magnitudes don't trip it.
void ExpectSameUtility(double a, double b, const std::string& what) {
  EXPECT_NEAR(a, b, 1e-9 * (1.0 + std::abs(a))) << what;
}

std::unique_ptr<PiOrderer> MustMakePi(const stats::Workload* w,
                                      utility::UtilityModel* m,
                                      bool use_independence) {
  auto orderer = PiOrderer::Create(w, m, {PlanSpace::FullSpace(*w)},
                                   use_independence);
  EXPECT_TRUE(orderer.ok()) << orderer.status();
  return std::move(*orderer);
}

TEST(PiTest, MatchesNaiveBruteForceOnAllMeasures) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    test::SeededScenario scenario("pi_test", seed);
    const stats::Workload w = MakeWorkload(3, 5, 0.4, scenario.seed());
    for (Measure measure :
         {Measure::kAdditive, Measure::kCost2, Measure::kFailureNoCache,
          Measure::kFailureCache, Measure::kMonetary, Measure::kMonetaryCache,
          Measure::kCoverage}) {
      SCOPED_TRACE(test::MeasureName(measure));
      auto pi_model = MustMakeMeasure(measure, &w);
      auto naive_model = MustMakeMeasure(measure, &w);
      auto pi = MustMakePi(&w, pi_model.get(), /*use_independence=*/true);
      auto naive = MustMakePi(&w, naive_model.get(),
                              /*use_independence=*/false);
      EXPECT_EQ(pi->name(), "pi");
      EXPECT_EQ(naive->name(), "naive");

      const std::vector<OrderedPlan> a = Drain(*pi);
      const std::vector<OrderedPlan> b = Drain(*naive);
      ASSERT_EQ(a.size(), b.size());
      ASSERT_EQ(a.size(), 5u * 5u * 5u);
      for (size_t i = 0; i < a.size(); ++i) {
        // Exact ordering: the utility sequences agree; plans may differ only
        // on ties. For a fully independent measure the cached value IS the
        // recomputed value, so even the plan sequence is byte-identical.
        EXPECT_NEAR(a[i].utility, b[i].utility, 1e-9) << "emission " << i;
        if (pi_model->fully_independent()) {
          EXPECT_EQ(a[i].plan, b[i].plan) << "emission " << i;
          EXPECT_EQ(a[i].utility, b[i].utility) << "emission " << i;
        }
      }
    }
  }
}

TEST(PiTest, IndependenceFilterSavesEvaluations) {
  const stats::Workload w = MakeWorkload(3, 5, 0.4, 99);
  const int64_t n = 5 * 5 * 5;

  {
    // Fully independent measure: nothing ever goes dirty again, so PI
    // evaluates each plan exactly once while the naive mode re-evaluates
    // every surviving plan per emission: n + (n-1) + ... + 1.
    auto pi_model = MustMakeMeasure(Measure::kFailureNoCache, &w);
    ASSERT_TRUE(pi_model->fully_independent());
    auto naive_model = MustMakeMeasure(Measure::kFailureNoCache, &w);
    auto pi = MustMakePi(&w, pi_model.get(), true);
    auto naive = MustMakePi(&w, naive_model.get(), false);
    Drain(*pi);
    Drain(*naive);
    EXPECT_EQ(pi->plan_evaluations(), n);
    EXPECT_EQ(naive->plan_evaluations(), n * (n + 1) / 2);
  }
  {
    // Conditional measure: the filter may only ever skip work, never add it.
    auto pi_model = MustMakeMeasure(Measure::kCoverage, &w);
    ASSERT_FALSE(pi_model->fully_independent());
    auto naive_model = MustMakeMeasure(Measure::kCoverage, &w);
    auto pi = MustMakePi(&w, pi_model.get(), true);
    auto naive = MustMakePi(&w, naive_model.get(), false);
    Drain(*pi);
    Drain(*naive);
    EXPECT_LE(pi->plan_evaluations(), naive->plan_evaluations());
  }
}

TEST(PiTest, MeasureClassificationMatrix) {
  const stats::Workload w = MakeWorkload(3, 4, 0.4, 5);

  struct Row {
    Measure measure;
    bool fully_monotonic;
    bool diminishing_returns;
    bool fully_independent;
  };
  // Section 3's taxonomy: additive and uniform-alpha cost are fully
  // monotonic; operation caching is what breaks both diminishing returns and
  // independence; coverage keeps diminishing returns but conditions on the
  // covered cells.
  const Row rows[] = {
      {Measure::kAdditive, true, true, true},
      {Measure::kCost2, false, true, true},
      {Measure::kFailureNoCache, false, true, true},
      {Measure::kFailureCache, false, false, false},
      {Measure::kMonetary, false, true, true},
      {Measure::kMonetaryCache, false, false, false},
      {Measure::kCoverage, false, true, false},
  };
  for (const Row& row : rows) {
    SCOPED_TRACE(test::MeasureName(row.measure));
    auto model = MustMakeMeasure(row.measure, &w);
    EXPECT_EQ(model->fully_monotonic(), row.fully_monotonic);
    EXPECT_EQ(model->diminishing_returns(), row.diminishing_returns);
    EXPECT_EQ(model->fully_independent(), row.fully_independent);
    // fully_independent must imply the pairwise predicate is always true.
    if (row.fully_independent) {
      EXPECT_TRUE(model->Independent({0, 0, 0}, {3, 3, 3}));
    }
  }

  // Measure (2) with uniform alpha needs a workload whose transmission costs
  // actually are uniform; then (and only then) it is fully monotonic.
  EXPECT_FALSE(utility::MakeMeasure(Measure::kCost2UniformAlpha, &w).ok());
  stats::WorkloadOptions uniform;
  uniform.query_length = 3;
  uniform.bucket_size = 4;
  uniform.overlap_rate = 0.4;
  uniform.regions_per_bucket = 12;
  uniform.alpha_min = 0.4;
  uniform.alpha_max = 0.4;
  uniform.seed = 5;
  auto uw = stats::Workload::Generate(uniform);
  ASSERT_TRUE(uw.ok()) << uw.status();
  auto uniform_model = MustMakeMeasure(Measure::kCost2UniformAlpha, &*uw);
  EXPECT_TRUE(uniform_model->fully_monotonic());
  EXPECT_TRUE(uniform_model->diminishing_returns());
  EXPECT_TRUE(uniform_model->fully_independent());
}

// Soundness of the pairwise predicate: whenever Independent(a, b) is true,
// executing b must leave a's utility unchanged (and vice versa — the
// definition is symmetric in what it licenses).
TEST(PiTest, IndependentPredicateIsSound) {
  test::SeededScenario scenario("pi_test", 4242);
  std::mt19937_64& rng = scenario.rng();
  const stats::Workload w = MakeWorkload(3, 5, 0.3, scenario.seed());
  const std::vector<ConcretePlan> plans =
      EnumeratePlans(PlanSpace::FullSpace(w));
  auto random_plan = [&]() { return plans[rng() % plans.size()]; };

  int independent_pairs = 0;
  for (Measure measure :
       {Measure::kFailureCache, Measure::kMonetaryCache, Measure::kCoverage}) {
    SCOPED_TRACE(test::MeasureName(measure));
    auto model = MustMakeMeasure(measure, &w);
    for (int trial = 0; trial < 200; ++trial) {
      const ConcretePlan a = random_plan();
      const ConcretePlan b = random_plan();
      if (!model->Independent(a, b)) continue;
      ++independent_pairs;
      // Test from a random prior context, not only the empty one: the
      // predicate's claim is unconditional in the executed set.
      std::vector<ConcretePlan> prior;
      for (int k = 0; k < static_cast<int>(rng() % 3); ++k) {
        prior.push_back(random_plan());
      }
      ExecutionContext ctx(&w);
      for (const ConcretePlan& p : prior) ctx.MarkExecuted(p);
      const double a_before = model->EvaluateConcrete(a, ctx);
      const double b_before = model->EvaluateConcrete(b, ctx);
      ctx.MarkExecuted(b);
      ExpectSameUtility(a_before, model->EvaluateConcrete(a, ctx),
                        "u(a) changed by executing b, trial " +
                            std::to_string(trial));
      ctx.Reset();
      for (const ConcretePlan& p : prior) ctx.MarkExecuted(p);
      ctx.MarkExecuted(a);
      ExpectSameUtility(b_before, model->EvaluateConcrete(b, ctx),
                        "u(b) changed by executing a, trial " +
                            std::to_string(trial));
    }
  }
  // The sampler must have exercised the true branch or the test is vacuous.
  EXPECT_GT(independent_pairs, 0);
}

// Soundness of group independence, the contract iDrips' frontier refresh
// walks executed suffixes with: if GroupIndependentOf(nodes, p) then no
// concrete member of the group changes utility when p runs — so the group's
// utility *interval* must be identical before and after, and a stale
// candidate may skip p when fast-forwarding its evaluation epoch.
TEST(PiTest, GroupIndependentOfIsSound) {
  test::SeededScenario scenario("pi_test", 777);
  std::mt19937_64& rng = scenario.rng();
  const stats::Workload w = MakeWorkload(3, 6, 0.3, scenario.seed());
  const PlanSpace full = PlanSpace::FullSpace(w);
  const AbstractionForest forest = AbstractionForest::Build(
      w, full, AbstractionHeuristic::kByCardinality);
  const std::vector<ConcretePlan> plans = EnumeratePlans(full);

  // Random abstract plans: any tree node per bucket, leaves included.
  auto random_node_in = [&](int bucket) {
    int node = forest.root(bucket);
    while (!forest.is_leaf(node) && rng() % 2 == 0) {
      node = rng() % 2 == 0 ? forest.left(node) : forest.right(node);
    }
    return node;
  };

  int independent_groups = 0;
  for (Measure measure :
       {Measure::kFailureCache, Measure::kMonetaryCache, Measure::kCoverage}) {
    SCOPED_TRACE(test::MeasureName(measure));
    auto model = MustMakeMeasure(measure, &w);
    for (int trial = 0; trial < 300; ++trial) {
      AbstractPlan group;
      group.forest = &forest;
      for (int b = 0; b < w.num_buckets(); ++b) {
        group.nodes.push_back(random_node_in(b));
      }
      const std::vector<const stats::StatSummary*> summaries =
          group.Summaries();
      const utility::NodeSpan span(summaries.data(), summaries.size());
      const ConcretePlan executed = plans[rng() % plans.size()];
      if (!model->GroupIndependentOf(span, executed)) continue;
      ++independent_groups;
      ExecutionContext ctx(&w);
      for (int k = 0; k < static_cast<int>(rng() % 3); ++k) {
        ctx.MarkExecuted(plans[rng() % plans.size()]);
      }
      const Interval before = model->Evaluate(span, ctx);
      ctx.MarkExecuted(executed);
      const Interval after = model->Evaluate(span, ctx);
      ExpectSameUtility(before.lo(), after.lo(),
                        "group lower bound moved, trial " +
                            std::to_string(trial));
      ExpectSameUtility(before.hi(), after.hi(),
                        "group upper bound moved, trial " +
                            std::to_string(trial));
      // Spot-check the definition member-wise on one concrete plan of the
      // group (the probe member — deterministically picked, always valid).
      ConcretePlan member;
      for (const stats::StatSummary* s : summaries) {
        member.push_back(model->ProbeMember(*s));
      }
      ExecutionContext member_ctx(&w);
      const double member_before = model->EvaluateConcrete(member, member_ctx);
      member_ctx.MarkExecuted(executed);
      ExpectSameUtility(member_before,
                        model->EvaluateConcrete(member, member_ctx),
                        "member utility moved, trial " + std::to_string(trial));
    }
  }
  EXPECT_GT(independent_groups, 0);
}

}  // namespace
}  // namespace planorder::core
