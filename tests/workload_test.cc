#include "stats/workload.h"

#include <gtest/gtest.h>

namespace planorder::stats {
namespace {

WorkloadOptions SmallOptions() {
  WorkloadOptions options;
  options.query_length = 3;
  options.bucket_size = 8;
  options.overlap_rate = 0.3;
  options.regions_per_bucket = 16;
  options.seed = 17;
  return options;
}

TEST(WorkloadGenerateTest, ShapeMatchesOptions) {
  auto w = Workload::Generate(SmallOptions());
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_EQ(w->num_buckets(), 3);
  for (int b = 0; b < 3; ++b) {
    EXPECT_EQ(w->bucket_size(b), 8);
    EXPECT_EQ(w->region_weights()[b].size(), 16u);
    EXPECT_GT(w->domain_size(b), 0.0);
  }
}

TEST(WorkloadGenerateTest, StatsWithinConfiguredRanges) {
  WorkloadOptions options = SmallOptions();
  options.alpha_min = 0.2;
  options.alpha_max = 0.4;
  options.failure_min = 0.1;
  options.failure_max = 0.3;
  options.fee_min = 1.0;
  options.fee_max = 2.0;
  auto w = Workload::Generate(options);
  ASSERT_TRUE(w.ok());
  for (int b = 0; b < w->num_buckets(); ++b) {
    for (int i = 0; i < w->bucket_size(b); ++i) {
      const SourceStats& s = w->source(b, i);
      EXPECT_GE(s.transmission_cost, 0.2);
      EXPECT_LE(s.transmission_cost, 0.4);
      EXPECT_GE(s.failure_prob, 0.1);
      EXPECT_LE(s.failure_prob, 0.3);
      EXPECT_GE(s.fee, 1.0);
      EXPECT_LE(s.fee, 2.0);
      EXPECT_GE(s.cardinality, 1.0);
      EXPECT_FALSE(s.regions.empty());
      EXPECT_LE(s.regions.count(), 16);
    }
  }
}

TEST(WorkloadGenerateTest, RegionWeightsNormalized) {
  auto w = Workload::Generate(SmallOptions());
  ASSERT_TRUE(w.ok());
  for (const auto& weights : w->region_weights()) {
    double total = 0;
    for (double x : weights) total += x;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(WorkloadGenerateTest, Deterministic) {
  auto a = Workload::Generate(SmallOptions());
  auto b = Workload::Generate(SmallOptions());
  ASSERT_TRUE(a.ok() && b.ok());
  for (int bk = 0; bk < a->num_buckets(); ++bk) {
    for (int i = 0; i < a->bucket_size(bk); ++i) {
      EXPECT_EQ(a->source(bk, i).regions.bits, b->source(bk, i).regions.bits);
      EXPECT_EQ(a->source(bk, i).cardinality, b->source(bk, i).cardinality);
    }
  }
  WorkloadOptions other = SmallOptions();
  other.seed = 18;
  auto c = Workload::Generate(other);
  ASSERT_TRUE(c.ok());
  bool any_difference = false;
  for (int bk = 0; bk < a->num_buckets() && !any_difference; ++bk) {
    for (int i = 0; i < a->bucket_size(bk); ++i) {
      if (a->source(bk, i).regions.bits != c->source(bk, i).regions.bits) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(WorkloadGenerateTest, OverlapRateRoughlyHonored) {
  // Empirical pairwise overlap frequency should land near the target.
  WorkloadOptions options = SmallOptions();
  options.bucket_size = 40;
  options.overlap_rate = 0.3;
  options.regions_per_bucket = 32;
  auto w = Workload::Generate(options);
  ASSERT_TRUE(w.ok());
  int overlapping = 0;
  int pairs = 0;
  for (int b = 0; b < w->num_buckets(); ++b) {
    for (int i = 0; i < w->bucket_size(b); ++i) {
      for (int j = i + 1; j < w->bucket_size(b); ++j) {
        ++pairs;
        if (w->source(b, i).regions.Intersects(w->source(b, j).regions)) {
          ++overlapping;
        }
      }
    }
  }
  const double rate = double(overlapping) / pairs;
  EXPECT_GT(rate, 0.15);
  EXPECT_LT(rate, 0.5);
}

TEST(WorkloadGenerateTest, SixtyFourRegionsSupported) {
  WorkloadOptions options = SmallOptions();
  options.regions_per_bucket = 64;
  auto w = Workload::Generate(options);
  ASSERT_TRUE(w.ok()) << w.status();
  for (int b = 0; b < w->num_buckets(); ++b) {
    EXPECT_EQ(w->region_weights()[b].size(), 64u);
    for (int i = 0; i < w->bucket_size(b); ++i) {
      EXPECT_FALSE(w->source(b, i).regions.empty());
    }
  }
  // The universe built from it evaluates cleanly.
  stats::CoverageUniverse universe = w->MakeUniverse();
  std::vector<RegionMask> box;
  for (int b = 0; b < w->num_buckets(); ++b) {
    box.push_back(w->source(b, 0).regions);
  }
  EXPECT_GE(universe.UncoveredBoxVolume(box), 0.0);
}

TEST(WorkloadGenerateTest, RejectsBadOptions) {
  WorkloadOptions options = SmallOptions();
  options.query_length = 0;
  EXPECT_FALSE(Workload::Generate(options).ok());
  options = SmallOptions();
  options.bucket_size = 0;
  EXPECT_FALSE(Workload::Generate(options).ok());
  options = SmallOptions();
  options.regions_per_bucket = 65;
  EXPECT_FALSE(Workload::Generate(options).ok());
  options = SmallOptions();
  options.overlap_rate = 1.5;
  EXPECT_FALSE(Workload::Generate(options).ok());
  options = SmallOptions();
  options.failure_max = 1.0;
  EXPECT_FALSE(Workload::Generate(options).ok());
}

TEST(WorkloadFromPartsTest, ValidatesMasksAndAlignment) {
  std::vector<std::vector<SourceStats>> buckets(1);
  SourceStats s;
  s.regions.bits = 0b100;  // region 2, but only 2 regions declared
  buckets[0].push_back(s);
  EXPECT_FALSE(
      Workload::FromParts(buckets, {{0.5, 0.5}}, 1.0, {10.0}).ok());
  // Aligned version works.
  buckets[0][0].regions.bits = 0b10;
  auto w = Workload::FromParts(buckets, {{0.5, 0.5}}, 1.0, {10.0});
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_EQ(w->num_buckets(), 1);
}

TEST(WorkloadFromPartsTest, RejectsEmptyAndMisaligned) {
  EXPECT_FALSE(Workload::FromParts({}, {}, 1.0, {}).ok());
  std::vector<std::vector<SourceStats>> buckets(1);
  buckets[0].push_back(SourceStats{});
  EXPECT_FALSE(Workload::FromParts(buckets, {}, 1.0, {1.0}).ok());
  EXPECT_FALSE(Workload::FromParts(buckets, {{1.0}}, 1.0, {}).ok());
  std::vector<std::vector<SourceStats>> with_empty(2);
  with_empty[0].push_back(SourceStats{});
  EXPECT_FALSE(
      Workload::FromParts(with_empty, {{1.0}, {1.0}}, 1.0, {1.0, 1.0}).ok());
}

TEST(WorkloadFromPartsTest, SummariesArePointIntervals) {
  std::vector<std::vector<SourceStats>> buckets(1);
  SourceStats s;
  s.cardinality = 7.0;
  s.transmission_cost = 0.5;
  s.failure_prob = 0.25;
  s.fee = 1.5;
  s.regions.bits = 0b1;
  buckets[0].push_back(s);
  auto w = Workload::FromParts(buckets, {{1.0}}, 2.0, {10.0});
  ASSERT_TRUE(w.ok());
  const StatSummary& summary = w->summary(0, 0);
  EXPECT_TRUE(summary.cardinality.is_point());
  EXPECT_EQ(summary.cardinality.lo(), 7.0);
  EXPECT_EQ(summary.mask_union.bits, summary.mask_intersection.bits);
  EXPECT_EQ(summary.members, std::vector<int>{0});
}

TEST(StatSummaryTest, MergeHullsStatsAndCombinesMasks) {
  SourceStats a;
  a.cardinality = 2.0;
  a.transmission_cost = 0.1;
  a.failure_prob = 0.0;
  a.fee = 1.0;
  a.regions.bits = 0b0011;
  SourceStats b;
  b.cardinality = 10.0;
  b.transmission_cost = 0.05;
  b.failure_prob = 0.5;
  b.fee = 3.0;
  b.regions.bits = 0b0110;
  StatSummary sa = StatSummary::ForConcrete(0, 0, a, 0.5);
  StatSummary sb = StatSummary::ForConcrete(0, 1, b, 0.7);
  StatSummary merged = StatSummary::Merge(sa, sb);
  EXPECT_DOUBLE_EQ(merged.mask_weight_max, 0.7);
  EXPECT_EQ(merged.cardinality, Interval(2.0, 10.0));
  EXPECT_EQ(merged.transmission_cost, Interval(0.05, 0.1));
  EXPECT_EQ(merged.failure_prob, Interval(0.0, 0.5));
  EXPECT_EQ(merged.fee, Interval(1.0, 3.0));
  EXPECT_EQ(merged.mask_union.bits, uint64_t{0b0111});
  EXPECT_EQ(merged.mask_intersection.bits, uint64_t{0b0010});
  EXPECT_EQ(merged.members, (std::vector<int>{0, 1}));
  EXPECT_FALSE(merged.is_concrete());
}

}  // namespace
}  // namespace planorder::stats
