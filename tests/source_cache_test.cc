// Tests of the cross-session source-operation result cache (src/cluster/):
// the single-flight Acquire/Publish/Abort protocol, content keying, the
// per-name residency view, and LRU eviction under the byte bound.

#include "cluster/source_cache.h"

#include <atomic>
#include <chrono>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace planorder::cluster {
namespace {

using Batch = std::vector<std::map<int, datalog::Term>>;
using Rows = std::vector<std::vector<datalog::Term>>;

Batch MakeBatch(const std::string& value) {
  Batch batch(1);
  batch[0][0] = datalog::Term::Constant(value);
  return batch;
}

Rows MakeRows(const std::string& value, int count = 1) {
  Rows rows;
  for (int i = 0; i < count; ++i) {
    rows.push_back({datalog::Term::Constant(value),
                    datalog::Term::Constant(value + std::to_string(i))});
  }
  return rows;
}

TEST(SourceCacheTest, MissElectsLeaderThenHitServesPublishedRows) {
  SourceOperationCache cache;
  bool leader = false;
  auto miss = cache.Acquire("s0", MakeBatch("a"), &leader);
  EXPECT_FALSE(miss.has_value());
  EXPECT_TRUE(leader);

  const Rows rows = MakeRows("a", 3);
  cache.Publish("s0", MakeBatch("a"), rows);

  leader = false;
  auto hit = cache.Acquire("s0", MakeBatch("a"), &leader);
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(leader);
  EXPECT_EQ(*hit, rows);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.resident_entries, 1);
}

TEST(SourceCacheTest, DistinctContentDistinctKeys) {
  SourceOperationCache cache;
  bool leader = false;
  EXPECT_FALSE(cache.Acquire("s0", MakeBatch("a"), &leader).has_value());
  cache.Publish("s0", MakeBatch("a"), MakeRows("a"));

  // Same source, different binding value: its own key, so a miss.
  EXPECT_FALSE(cache.Acquire("s0", MakeBatch("b"), &leader).has_value());
  EXPECT_TRUE(leader);
  // Different source, same batch: also a miss.
  EXPECT_FALSE(cache.Acquire("s1", MakeBatch("a"), &leader).has_value());
  EXPECT_TRUE(leader);
}

TEST(SourceCacheTest, ResidencyViewAggregatesPerName) {
  SourceOperationCache cache;
  EXPECT_FALSE(cache.IsResident("s0"));
  bool leader = false;
  cache.Acquire("s0", MakeBatch("a"), &leader);
  // In flight is not resident: the fetch has not paid off yet.
  EXPECT_FALSE(cache.IsResident("s0"));
  cache.Publish("s0", MakeBatch("a"), MakeRows("a"));
  EXPECT_TRUE(cache.IsResident("s0"));
  EXPECT_FALSE(cache.IsResident("s1"));
}

TEST(SourceCacheTest, AbortWakesAndPromotesOneWaiter) {
  SourceOperationCache cache;
  bool first_leader = false;
  EXPECT_FALSE(cache.Acquire("s0", MakeBatch("a"), &first_leader).has_value());
  ASSERT_TRUE(first_leader);

  // A waiter blocks behind the in-flight fetch; after the leader aborts it
  // must be promoted to leader itself (nullopt + leader).
  bool waiter_leader = false;
  std::optional<Rows> waiter_result;
  std::thread waiter([&cache, &waiter_leader, &waiter_result] {
    waiter_result = cache.Acquire("s0", MakeBatch("a"), &waiter_leader);
  });
  // Give the waiter a moment to block, then fail the fetch.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cache.Abort("s0", MakeBatch("a"));
  waiter.join();

  EXPECT_FALSE(waiter_result.has_value());
  EXPECT_TRUE(waiter_leader);
  // The promoted leader publishes; the key now serves hits.
  cache.Publish("s0", MakeBatch("a"), MakeRows("a"));
  bool leader = false;
  EXPECT_TRUE(cache.Acquire("s0", MakeBatch("a"), &leader).has_value());
  EXPECT_EQ(cache.stats().single_flight_waits, 1);
}

TEST(SourceCacheTest, SingleFlightCoalescesConcurrentFetches) {
  SourceOperationCache cache;
  constexpr int kThreads = 8;
  std::atomic<int> leaders{0};
  std::atomic<int> hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &leaders, &hits] {
      bool leader = false;
      auto result = cache.Acquire("s0", MakeBatch("a"), &leader);
      if (result.has_value()) {
        ++hits;
        return;
      }
      ASSERT_TRUE(leader);
      ++leaders;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      cache.Publish("s0", MakeBatch("a"), MakeRows("a"));
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Exactly one fetch hit the (hypothetical) network; everyone else was
  // served from the published entry.
  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(hits.load(), kThreads - 1);
}

TEST(SourceCacheTest, LruEvictionRespectsByteBoundAndRecency) {
  // Budget two entries' worth of payload; rows are sized so a third insert
  // must evict the least recently used key.
  SourceCacheOptions options;
  const Rows rows_a = MakeRows("aaaaaaaa", 4);
  SourceOperationCache probe;  // measures one entry's footprint
  bool leader = false;
  probe.Acquire("s0", MakeBatch("a"), &leader);
  probe.Publish("s0", MakeBatch("a"), rows_a);
  const int64_t per_entry = probe.stats().resident_bytes;
  ASSERT_GT(per_entry, 0);
  options.capacity_bytes = 2 * per_entry;

  SourceOperationCache cache(options);
  auto insert = [&cache](const std::string& source, const std::string& v) {
    bool lead = false;
    ASSERT_FALSE(cache.Acquire(source, MakeBatch(v), &lead).has_value());
    cache.Publish(source, MakeBatch(v), MakeRows("aaaaaaaa", 4));
  };
  insert("s0", "a");
  insert("s1", "b");
  // Refresh s0's recency with a hit, then overflow: s1 (now LRU) must go.
  ASSERT_TRUE(cache.Acquire("s0", MakeBatch("a"), &leader).has_value());
  insert("s2", "c");

  EXPECT_TRUE(cache.IsResident("s0"));
  EXPECT_FALSE(cache.IsResident("s1"));
  EXPECT_TRUE(cache.IsResident("s2"));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.resident_entries, 2);
  EXPECT_LE(stats.resident_bytes, options.capacity_bytes);
}

TEST(SourceCacheTest, UnboundedCapacityNeverEvicts) {
  SourceCacheOptions options;
  options.capacity_bytes = 0;  // <= 0 = unbounded
  SourceOperationCache cache(options);
  for (int i = 0; i < 64; ++i) {
    bool leader = false;
    const std::string value = "v" + std::to_string(i);
    ASSERT_FALSE(cache.Acquire("s0", MakeBatch(value), &leader).has_value());
    cache.Publish("s0", MakeBatch(value), MakeRows(value, 8));
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.resident_entries, 64);
}

}  // namespace
}  // namespace planorder::cluster
