/// Concurrency tests of the QueryService: many client sessions multiplexed
/// over ONE shared runtime::RemoteRegistry (via one SourceRuntime) must
/// produce exactly the answers of serial execution, with per-session runtime
/// accounting that never leaks across sessions. Runs under the TSan CI job.

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/source_access.h"
#include "exec/synthetic_domain.h"
#include "runtime/source_runtime.h"
#include "service/query_service.h"

namespace planorder::service {
namespace {

using exec::MediatorResult;

class ServiceConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stats::WorkloadOptions wopts;
    wopts.query_length = 2;
    wopts.bucket_size = 4;
    wopts.overlap_rate = 0.4;
    wopts.regions_per_bucket = 8;
    wopts.seed = 53;
    auto domain = exec::BuildSyntheticDomain(wopts, 150);
    ASSERT_TRUE(domain.ok()) << domain.status();
    domain_ = std::move(*domain);

    for (datalog::SourceId id = 0; id < domain_->catalog.num_sources(); ++id) {
      const std::string& name = domain_->catalog.source(id).name;
      auto source = registry_.Register(name, 2);
      ASSERT_TRUE(source.ok());
      for (const auto& tuple : domain_->source_facts.TuplesFor(name)) {
        ASSERT_TRUE((*source)->Add(tuple).ok());
      }
    }
  }

  runtime::RuntimeOptions RuntimeOpts(double failure_rate) {
    runtime::RuntimeOptions options;
    options.num_threads = 4;
    options.time_dilation = 0.0;  // no real sleeping: fast and TSan-friendly
    options.default_model.transient_failure_rate = failure_rate;
    options.retry.max_attempts = 64;
    options.seed = 99;
    return options;
  }

  exec::Mediator::RunLimits Limits(int max_plans) {
    exec::Mediator::RunLimits limits;
    limits.max_plans = max_plans;
    return limits;
  }

  static void ExpectSameTrace(const MediatorResult& a,
                              const MediatorResult& b) {
    ASSERT_EQ(a.steps.size(), b.steps.size());
    for (size_t i = 0; i < a.steps.size(); ++i) {
      EXPECT_EQ(a.steps[i].plan, b.steps[i].plan) << "step " << i;
      EXPECT_EQ(a.steps[i].answers_from_plan, b.steps[i].answers_from_plan)
          << "step " << i;
      EXPECT_EQ(a.steps[i].total_answers, b.steps[i].total_answers)
          << "step " << i;
    }
    EXPECT_EQ(a.total_answers, b.total_answers);
  }

  std::unique_ptr<exec::SyntheticDomain> domain_;
  exec::SourceRegistry registry_;
};

TEST_F(ServiceConcurrencyTest, ConcurrentSessionsMatchSerialExecution) {
  runtime::SourceRuntime runtime(&registry_, RuntimeOpts(0.0));
  ServiceOptions options;
  options.max_active_sessions = 8;
  QueryService service(&domain_->catalog, &domain_->source_facts, options,
                       &runtime);

  // Serial reference through the same service and shared registry.
  auto reference = service.RunQuery(domain_->query, Limits(12));
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_GT(reference->total_answers, 0u);

  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 2;
  std::vector<std::vector<MediatorResult>> results(kThreads);
  std::vector<Status> statuses(kThreads, OkStatus());
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int r = 0; r < kRunsPerThread; ++r) {
        auto result = service.RunQuery(domain_->query, Limits(12));
        if (!result.ok()) {
          statuses[size_t(t)] = result.status();
          return;
        }
        results[size_t(t)].push_back(std::move(*result));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(statuses[size_t(t)].ok()) << statuses[size_t(t)];
    ASSERT_EQ(results[size_t(t)].size(), size_t(kRunsPerThread));
    for (const MediatorResult& result : results[size_t(t)]) {
      ExpectSameTrace(*reference, result);
    }
  }

  const ServiceMetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.sessions_completed, 1 + kThreads * kRunsPerThread);
  EXPECT_EQ(metrics.sessions_shed, 0);
  EXPECT_EQ(metrics.active_sessions, 0);
  // The reference run was the one cold miss; the rest hit (concurrent
  // first-round misses can race, so hits is a lower bound).
  EXPECT_GE(metrics.cache.hits, 1);
  EXPECT_EQ(metrics.cache.collisions, 0);
}

TEST_F(ServiceConcurrencyTest, FaultyNetworkStillMatchesAndIsolatesAccounting) {
  // Transient faults + retries over the shared registry: answers are still
  // exactly serial (deterministic content-hashed fault schedule), and each
  // session's accounting reflects only its own calls.
  runtime::SourceRuntime runtime(&registry_, RuntimeOpts(0.3));
  ServiceOptions options;
  options.max_active_sessions = 4;
  QueryService service(&domain_->catalog, &domain_->source_facts, options,
                       &runtime);

  auto reference = service.RunQuery(domain_->query, Limits(10));
  ASSERT_TRUE(reference.ok()) << reference.status();
  EXPECT_GT(reference->runtime.transient_failures, 0);

  constexpr int kThreads = 3;
  std::vector<MediatorResult> results(kThreads);
  std::vector<Status> statuses(kThreads, OkStatus());
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto result = service.RunQuery(domain_->query, Limits(10));
      if (!result.ok()) {
        statuses[size_t(t)] = result.status();
        return;
      }
      results[size_t(t)] = std::move(*result);
    });
  }
  for (std::thread& worker : workers) worker.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(statuses[size_t(t)].ok()) << statuses[size_t(t)];
    ExpectSameTrace(*reference, results[size_t(t)]);
    // Identical queries make identical source calls, so the plan-local
    // accounting is identical too — regardless of interleaving. A registry
    // delta would have smeared other sessions' retries in here.
    EXPECT_EQ(results[size_t(t)].runtime.transient_failures,
              reference->runtime.transient_failures);
    EXPECT_EQ(results[size_t(t)].runtime.retries,
              reference->runtime.retries);
  }

  // The shared registry's totals cover ALL sessions' work.
  const exec::RuntimeAccounting shared = runtime.remotes().TotalStats();
  EXPECT_EQ(shared.transient_failures,
            (1 + kThreads) * reference->runtime.transient_failures);
}

TEST_F(ServiceConcurrencyTest, InterleavedStreamsShareTheRegistry) {
  // Two sessions advanced in lockstep from one thread: interleaving their
  // pulls over the shared registry must not perturb either stream.
  runtime::SourceRuntime runtime(&registry_, RuntimeOpts(0.0));
  ServiceOptions options;
  QueryService service(&domain_->catalog, &domain_->source_facts, options,
                       &runtime);
  auto reference = service.RunQuery(domain_->query, Limits(12));
  ASSERT_TRUE(reference.ok()) << reference.status();

  auto a = service.OpenSession(domain_->query, Limits(12));
  auto b = service.OpenSession(domain_->query, Limits(12));
  ASSERT_TRUE(a.ok() && b.ok());
  bool a_done = false;
  bool b_done = false;
  while (!a_done || !b_done) {
    if (!a_done && !(*a)->NextStep().ok()) a_done = true;
    if (!b_done && !(*b)->NextStep().ok()) b_done = true;
  }
  const MediatorResult result_a = (*a)->Finish();
  const MediatorResult result_b = (*b)->Finish();
  ExpectSameTrace(*reference, result_a);
  ExpectSameTrace(*reference, result_b);
}

}  // namespace
}  // namespace planorder::service
