#include "core/drips.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace planorder::core {
namespace {

using test::MustMakeMeasure;
using test::MakeWorkload;
using test::Measure;

AbstractPlan TopPlan(const AbstractionForest& forest) {
  AbstractPlan top;
  top.forest = &forest;
  for (int b = 0; b < forest.num_buckets(); ++b) {
    top.nodes.push_back(forest.root(b));
  }
  return top;
}

TEST(DripsTest, EmptyStartsIsNotFound) {
  stats::Workload w = MakeWorkload(2, 2, 0.3, 1);
  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  utility::ExecutionContext ctx(&w);
  auto result = RunDrips({}, *model, ctx, nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

class DripsBestPlanTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DripsBestPlanTest, FindsTheArgmaxAcrossMeasures) {
  stats::Workload w = MakeWorkload(3, 6, 0.3, GetParam());
  const PlanSpace space = PlanSpace::FullSpace(w);
  for (Measure measure :
       {Measure::kCoverage, Measure::kCost2, Measure::kFailureNoCache,
        Measure::kMonetary}) {
    auto model = MustMakeMeasure(measure, &w);
    utility::ExecutionContext ctx(&w);
    const AbstractionForest forest = AbstractionForest::Build(
        w, space, AbstractionHeuristic::kByCardinality);
    int64_t evaluations = 0;
    auto result = RunDrips({TopPlan(forest)}, *model, ctx, &evaluations);
    ASSERT_TRUE(result.ok()) << result.status();

    // Ground truth by brute force.
    double best = -1e300;
    for (int a = 0; a < 6; ++a) {
      for (int b = 0; b < 6; ++b) {
        for (int c = 0; c < 6; ++c) {
          best = std::max(best, model->EvaluateConcrete({a, b, c}, ctx));
        }
      }
    }
    EXPECT_NEAR(result->utility, best, 1e-9) << test::MeasureName(measure);
    EXPECT_NEAR(model->EvaluateConcrete(result->plan, ctx), best, 1e-9);
    EXPECT_GT(evaluations, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DripsBestPlanTest,
                         ::testing::Values(10, 20, 30, 40));

TEST(DripsTest, ConditionsOnExecutedPlans) {
  stats::Workload w = MakeWorkload(3, 4, 0.5, 50);
  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  utility::ExecutionContext ctx(&w);
  const PlanSpace space = PlanSpace::FullSpace(w);
  const AbstractionForest forest =
      AbstractionForest::Build(w, space, AbstractionHeuristic::kByCardinality);
  auto first = RunDrips({TopPlan(forest)}, *model, ctx, nullptr);
  ASSERT_TRUE(first.ok());
  ctx.MarkExecuted(first->plan);
  auto second = RunDrips({TopPlan(forest)}, *model, ctx, nullptr);
  ASSERT_TRUE(second.ok());
  // The executed plan itself is now worth 0, so the new best must be the
  // conditional argmax.
  double best = -1e300;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      for (int c = 0; c < 4; ++c) {
        best = std::max(best, model->EvaluateConcrete({a, b, c}, ctx));
      }
    }
  }
  EXPECT_NEAR(second->utility, best, 1e-9);
}

TEST(DripsTest, PaperExampleSavesEvaluations) {
  // Section 5.1's point: Drips finds the best of a 3x3 space evaluating
  // fewer plans than brute force (9 concrete evaluations), despite paying
  // for abstract evaluations. With a good heuristic the count stays below
  // the 2*9-1 = 17 total nodes; assert the stronger paper-style property
  // against concrete-only brute force via a tight workload.
  stats::WorkloadOptions options;
  options.query_length = 2;
  options.bucket_size = 16;
  options.overlap_rate = 0.2;
  options.seed = 60;
  auto w = stats::Workload::Generate(options);
  ASSERT_TRUE(w.ok());
  auto model = MustMakeMeasure(Measure::kFailureNoCache, &*w);
  utility::ExecutionContext ctx(&*w);
  const PlanSpace space = PlanSpace::FullSpace(*w);
  const AbstractionForest forest = AbstractionForest::Build(
      *w, space, AbstractionHeuristic::kByCardinality);
  int64_t evaluations = 0;
  auto result = RunDrips({TopPlan(forest)}, *model, ctx, &evaluations);
  ASSERT_TRUE(result.ok());
  // Brute force would evaluate 256 concrete plans.
  EXPECT_LT(evaluations, 256);
}

TEST(DripsTest, ManyRefinementsSurviveCandidateReallocation) {
  // Regression: the candidate vector reserves starts + 64 slots, and every
  // refinement inserts two more candidates, so enough refinements force a
  // reallocation mid-run. The selection of the best abstract/concrete
  // candidate used to hold raw pointers into the vector across insertions;
  // with a single start, >64 insertions guarantee the reallocation happens
  // (index-based bookkeeping keeps this safe; under ASan the old pointer
  // code faults here).
  stats::Workload w = MakeWorkload(3, 16, 0.3, 81);
  auto model = MustMakeMeasure(Measure::kFailureNoCache, &w);
  utility::ExecutionContext ctx(&w);
  const PlanSpace space = PlanSpace::FullSpace(w);
  const AbstractionForest forest =
      AbstractionForest::Build(w, space, AbstractionHeuristic::kByCardinality);
  int64_t evaluations = 0;
  auto result = RunDrips({TopPlan(forest)}, *model, ctx, &evaluations);
  ASSERT_TRUE(result.ok()) << result.status();
  // Without probes every inserted candidate costs exactly one evaluation, so
  // this asserts the run really outgrew the initial 1 + 64 reservation.
  EXPECT_GT(evaluations, 65);

  double best = -1e300;
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      for (int c = 0; c < 16; ++c) {
        best = std::max(best, model->EvaluateConcrete({a, b, c}, ctx));
      }
    }
  }
  EXPECT_NEAR(result->utility, best, 1e-9);
}

TEST(DripsTest, MultipleForestsPickGlobalBest) {
  stats::Workload w = MakeWorkload(2, 6, 0.3, 70);
  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  utility::ExecutionContext ctx(&w);
  PlanSpace full = PlanSpace::FullSpace(w);
  std::vector<PlanSpace> spaces = SplitAround(full, {0, 0});
  std::vector<AbstractionForest> forests;
  forests.reserve(spaces.size());
  for (const PlanSpace& s : spaces) {
    forests.push_back(
        AbstractionForest::Build(w, s, AbstractionHeuristic::kByCardinality));
  }
  std::vector<AbstractPlan> starts;
  for (const auto& f : forests) starts.push_back(TopPlan(f));
  auto result = RunDrips(starts, *model, ctx, nullptr);
  ASSERT_TRUE(result.ok());

  double best = -1e300;
  utility::ConcretePlan argmax;
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      if (a == 0 && b == 0) continue;  // removed plan
      const double u = model->EvaluateConcrete({a, b}, ctx);
      if (u > best) {
        best = u;
        argmax = {a, b};
      }
    }
  }
  EXPECT_NEAR(result->utility, best, 1e-9);
}

}  // namespace
}  // namespace planorder::core
