#include "runtime/remote_source.h"

#include <gtest/gtest.h>

#include "datalog/term.h"
#include "exec/source_access.h"
#include "runtime/retry_policy.h"

namespace planorder::runtime {
namespace {

using datalog::Term;

/// A registry with one source v(actor, movie) holding a few tuples.
class RemoteSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto v = registry_.Register("v", 2);
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(
        (*v)->Add({Term::Constant("ford"), Term::Constant("m1")}).ok());
    ASSERT_TRUE(
        (*v)->Add({Term::Constant("ford"), Term::Constant("m2")}).ok());
    ASSERT_TRUE(
        (*v)->Add({Term::Constant("kate"), Term::Constant("m3")}).ok());
  }

  /// A remote view with sleeping disabled (logic tests need no wall clock).
  RemoteRegistry MakeRemotes(uint64_t seed) {
    RemoteRegistry remotes(&registry_, seed);
    remotes.set_time_dilation(0.0);
    return remotes;
  }

  static std::vector<std::map<int, Term>> FordBatch() {
    return {{{0, Term::Constant("ford")}}};
  }

  exec::SourceRegistry registry_;
};

TEST_F(RemoteSourceTest, PassesThroughWhenModelIsQuiet) {
  RemoteRegistry remotes = MakeRemotes(7);
  RemoteSource* v = remotes.Find("v");
  ASSERT_NE(v, nullptr);
  auto rows = v->FetchBatch(FordBatch(), RetryPolicy{});
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 2u);
  const exec::RuntimeAccounting stats = v->stats();
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(stats.transient_failures, 0);
  EXPECT_EQ(stats.permanent_failures, 0);
  // Underlying access accounting still recorded.
  EXPECT_EQ(v->underlying().stats().calls, 1);
}

TEST_F(RemoteSourceTest, LatencyModelIsAffineInWorkShipped) {
  RemoteRegistry remotes = MakeRemotes(7);
  NetworkModel model;
  model.base_latency_ms = 10.0;
  model.per_binding_latency_ms = 2.0;
  model.per_tuple_latency_ms = 1.0;
  ASSERT_TRUE(remotes.Configure("v", model).ok());
  RemoteSource* v = remotes.Find("v");
  double simulated = 0.0;
  auto rows = v->FetchBatch(FordBatch(), RetryPolicy{}, &simulated);
  ASSERT_TRUE(rows.ok());
  // 10 (base) + 2*1 (bindings) + 1*2 (tuples) with zero jitter.
  EXPECT_DOUBLE_EQ(simulated, 14.0);
  EXPECT_DOUBLE_EQ(v->stats().latency_ms_total, 14.0);
  EXPECT_DOUBLE_EQ(v->stats().latency_ms_max, 14.0);
}

TEST_F(RemoteSourceTest, SameSeedSameBehaviorDifferentSeedDiverges) {
  NetworkModel model;
  model.base_latency_ms = 10.0;
  model.latency_jitter = 0.8;
  model.transient_failure_rate = 0.3;
  RetryPolicy retry;
  retry.max_attempts = 20;

  auto run = [&](uint64_t seed) {
    RemoteRegistry remotes = MakeRemotes(seed);
    [&] { ASSERT_TRUE(remotes.Configure("v", model).ok()); }();
    double simulated = 0.0;
    auto rows = remotes.Find("v")->FetchBatch(FordBatch(), retry, &simulated);
    [&] { ASSERT_TRUE(rows.ok()) << rows.status(); }();
    return std::pair(simulated, remotes.TotalStats().transient_failures);
  };
  const auto a1 = run(42);
  const auto a2 = run(42);
  EXPECT_EQ(a1, a2);  // bit-identical replay from the seed
  const auto b = run(43);
  EXPECT_NE(a1.first, b.first);  // different seed, different latency draws
}

TEST_F(RemoteSourceTest, TransientFailuresAreRetriedToSuccess) {
  RemoteRegistry remotes = MakeRemotes(11);
  NetworkModel model;
  model.transient_failure_rate = 0.6;
  ASSERT_TRUE(remotes.Configure("v", model).ok());
  RetryPolicy retry;
  retry.max_attempts = 64;  // virtually certain recovery at rate 0.6
  RemoteSource* v = remotes.Find("v");
  auto rows = v->FetchBatch(FordBatch(), retry);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 2u);
  const exec::RuntimeAccounting stats = v->stats();
  EXPECT_EQ(stats.retries, stats.transient_failures);
  EXPECT_GE(stats.retries, 0);
}

TEST_F(RemoteSourceTest, RetriesExhaustedYieldsUnavailable) {
  RemoteRegistry remotes = MakeRemotes(11);
  NetworkModel model;
  model.transient_failure_rate = 1.0;  // every attempt fails
  ASSERT_TRUE(remotes.Configure("v", model).ok());
  RetryPolicy retry;
  retry.max_attempts = 3;
  auto rows = remotes.Find("v")->FetchBatch(FordBatch(), retry);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnavailable);
  const exec::RuntimeAccounting stats = remotes.TotalStats();
  EXPECT_EQ(stats.transient_failures, 3);
  EXPECT_EQ(stats.retries, 2);  // backoffs between the three attempts
}

TEST_F(RemoteSourceTest, PermanentFailureFailsFastWithoutRetries) {
  RemoteRegistry remotes = MakeRemotes(11);
  NetworkModel model;
  model.permanently_failed = true;
  ASSERT_TRUE(remotes.Configure("v", model).ok());
  auto rows = remotes.Find("v")->FetchBatch(FordBatch(), RetryPolicy{});
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnavailable);
  const exec::RuntimeAccounting stats = remotes.TotalStats();
  EXPECT_EQ(stats.permanent_failures, 1);
  EXPECT_EQ(stats.retries, 0);
  EXPECT_EQ(remotes.Find("v")->underlying().stats().calls, 0);
}

TEST_F(RemoteSourceTest, DeadlineCutsOffSlowAttempts) {
  RemoteRegistry remotes = MakeRemotes(11);
  NetworkModel model;
  model.base_latency_ms = 100.0;   // deterministic: always over the deadline
  model.call_deadline_ms = 40.0;
  ASSERT_TRUE(remotes.Configure("v", model).ok());
  RetryPolicy retry;
  retry.max_attempts = 4;
  double simulated = 0.0;
  auto rows = remotes.Find("v")->FetchBatch(FordBatch(), retry, &simulated);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnavailable);
  const exec::RuntimeAccounting stats = remotes.TotalStats();
  EXPECT_EQ(stats.deadline_timeouts, 4);
  // Each timed-out attempt costs exactly the deadline.
  EXPECT_DOUBLE_EQ(stats.latency_ms_total, 4 * 40.0);
  EXPECT_DOUBLE_EQ(stats.latency_ms_max, 40.0);
  EXPECT_GT(simulated, 4 * 40.0);  // plus backoff waits
}

TEST_F(RemoteSourceTest, HedgingNeverSlowsACallDown) {
  NetworkModel slow;
  slow.base_latency_ms = 50.0;
  slow.latency_jitter = 0.9;
  auto total = [&](double hedge_delay) {
    RemoteRegistry remotes = MakeRemotes(99);
    NetworkModel model = slow;
    model.hedge_delay_ms = hedge_delay;
    [&] { ASSERT_TRUE(remotes.Configure("v", model).ok()); }();
    // Several distinct calls to spread over the jitter distribution.
    for (const char* actor : {"ford", "kate", "nobody"}) {
      auto rows = remotes.Find("v")->FetchBatch(
          {{{0, Term::Constant(actor)}}}, RetryPolicy{});
      [&] { ASSERT_TRUE(rows.ok()); }();
    }
    return std::pair(remotes.TotalStats().latency_ms_total,
                     remotes.TotalStats().hedged_calls);
  };
  const auto [unhedged_ms, unhedged_count] = total(0.0);
  const auto [hedged_ms, hedged_count] = total(30.0);
  EXPECT_EQ(unhedged_count, 0);
  EXPECT_GT(hedged_count, 0);  // jitter pushes some primaries past 30ms
  // Racing a backup can only improve an attempt's completion time.
  EXPECT_LE(hedged_ms, unhedged_ms);
}

TEST_F(RemoteSourceTest, RetryBudgetGivesUpEarly) {
  RemoteRegistry remotes = MakeRemotes(11);
  NetworkModel model;
  model.transient_failure_rate = 1.0;
  ASSERT_TRUE(remotes.Configure("v", model).ok());
  RetryPolicy retry;
  retry.max_attempts = 100;
  retry.initial_backoff_ms = 10.0;
  retry.jitter_fraction = 0.0;
  retry.retry_budget_ms = 25.0;  // 10 + 20 > 25: gives up before attempt 3
  auto rows = remotes.Find("v")->FetchBatch(FordBatch(), retry);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(remotes.TotalStats().transient_failures, 2);
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 1.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 8.0;
  policy.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(policy.BackoffMs(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(2, 0), 2.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(3, 0), 4.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(4, 0), 8.0);
  EXPECT_DOUBLE_EQ(policy.BackoffMs(10, 0), 8.0);  // capped
}

TEST(RetryPolicyTest, JitterStaysWithinTheConfiguredFraction) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 100.0;
  policy.max_backoff_ms = 100.0;
  policy.jitter_fraction = 0.5;
  for (uint64_t h = 0; h < 200; ++h) {
    const double backoff = policy.BackoffMs(1, h);
    EXPECT_GT(backoff, 50.0 - 1e-9);
    EXPECT_LE(backoff, 100.0);
  }
  // And it is a pure function of (attempt, hash).
  EXPECT_DOUBLE_EQ(policy.BackoffMs(1, 77), policy.BackoffMs(1, 77));
}

TEST(RemoteRegistryTest, ConfigureUnknownSourceFails) {
  exec::SourceRegistry registry;
  ASSERT_TRUE(registry.Register("a", 1).ok());
  ASSERT_TRUE(registry.Register("b", 1).ok());
  RemoteRegistry remotes(&registry, 5);
  EXPECT_EQ(remotes.Configure("nope", NetworkModel{}).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(remotes.Names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(remotes.Find("nope"), nullptr);
}

}  // namespace
}  // namespace planorder::runtime
