#include "reformulation/inverse_rules.h"

#include <set>

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "reformulation/rewriting.h"

namespace planorder::reformulation {
namespace {

using datalog::Catalog;
using datalog::ConjunctiveQuery;
using datalog::ParseAtom;
using datalog::ParseRule;

Catalog MovieCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog.schema().AddRelation("play-in", 2).ok());
  EXPECT_TRUE(catalog.schema().AddRelation("review-of", 2).ok());
  EXPECT_TRUE(catalog.schema().AddRelation("american", 1).ok());
  for (const char* text : {
           "v1(A,M) :- play-in(A,M), american(M)",
           "v3(A,M) :- play-in(A,M)",
           "v4(R,M) :- review-of(R,M)",
       }) {
    EXPECT_TRUE(catalog.AddSourceFromText(text).ok());
  }
  return catalog;
}

TEST(MakeInverseRulesTest, OneRulePerViewAtom) {
  Catalog catalog = MovieCatalog();
  const std::vector<datalog::Rule> rules = MakeInverseRules(catalog);
  // v1 has 2 body atoms, v3 and v4 one each.
  ASSERT_EQ(rules.size(), 4u);
  // v1's play-in inverse: play-in(A,M) :- v1(A,M) (no existentials).
  EXPECT_EQ(rules[0].ToString(), "play-in(A,M) :- v1(A,M)");
  EXPECT_EQ(rules[1].ToString(), "american(M) :- v1(A,M)");
}

TEST(MakeInverseRulesTest, ExistentialsBecomeSkolems) {
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v(A) :- p(A, B)").ok());
  const std::vector<datalog::Rule> rules = MakeInverseRules(catalog);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].ToString(), "p(A,f_v_B(A)) :- v(A)");
}

TEST(BucketsFromInverseRulesTest, MatchesBucketAlgorithmOnMovieDomain) {
  Catalog catalog = MovieCatalog();
  auto q = ParseRule("q(M,R) :- play-in(ford,M), review-of(R,M)");
  ASSERT_TRUE(q.ok());
  auto ir_buckets = BucketsFromInverseRules(*q, catalog);
  ASSERT_TRUE(ir_buckets.ok());
  auto direct = BuildBuckets(*q, catalog);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(ir_buckets->buckets, direct->buckets);
}

TEST(BucketsFromInverseRulesTest, SkolemBlockedDistinguishedVariable) {
  // A source that projects away a distinguished variable would answer it
  // with a Skolem term; it must not enter the bucket.
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v_proj(A) :- p(A, B)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v_full(A,B) :- p(A, B)").ok());
  auto q = ParseRule("q(A,B) :- p(A,B)");
  ASSERT_TRUE(q.ok());
  auto buckets = BucketsFromInverseRules(*q, catalog);
  ASSERT_TRUE(buckets.ok());
  EXPECT_EQ(buckets->buckets[0], (std::vector<datalog::SourceId>{1}));
}

TEST(AnswerWithInverseRulesTest, MatchesUnionOfSoundPlans) {
  Catalog catalog = MovieCatalog();
  auto q = ParseRule("q(M,R) :- play-in(ford,M), review-of(R,M)");
  ASSERT_TRUE(q.ok());

  datalog::Database source_db;
  auto add = [&](const char* text) {
    auto atom = ParseAtom(text);
    ASSERT_TRUE(atom.ok());
    source_db.AddFact(*atom);
  };
  add("v1(ford, witness)");
  add("v3(ford, sabrina)");
  add("v3(kate, titanic)");
  add("v4(rev1, witness)");
  add("v4(rev2, sabrina)");
  add("v4(rev3, titanic)");

  auto via_rules = AnswerWithInverseRules(*q, catalog, source_db);
  ASSERT_TRUE(via_rules.ok()) << via_rules.status();
  std::set<std::vector<datalog::Term>> rule_answers(via_rules->begin(),
                                                    via_rules->end());

  auto plans = EnumerateSoundPlans(*q, catalog);
  ASSERT_TRUE(plans.ok());
  std::set<std::vector<datalog::Term>> plan_answers;
  for (const QueryPlan& plan : *plans) {
    auto tuples = datalog::EvaluateQuery(plan.rewriting, source_db);
    ASSERT_TRUE(tuples.ok());
    plan_answers.insert(tuples->begin(), tuples->end());
  }
  EXPECT_EQ(rule_answers, plan_answers);
  EXPECT_EQ(rule_answers.size(), 2u);  // witness & sabrina reviews for ford
}

TEST(AnswerWithInverseRulesTest, SkolemJoinsProduceNoFalseAnswers) {
  // Skolem terms may join inside the evaluation but must never surface.
  Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  ASSERT_TRUE(catalog.schema().AddRelation("r", 2).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vp(A) :- p(A, B)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vr(C) :- r(B, C)").ok());
  auto q = ParseRule("q(A,C) :- p(A,B), r(B,C)");
  ASSERT_TRUE(q.ok());
  datalog::Database source_db;
  auto a1 = ParseAtom("vp(x)");
  auto a2 = ParseAtom("vr(y)");
  ASSERT_TRUE(a1.ok() && a2.ok());
  source_db.AddFact(*a1);
  source_db.AddFact(*a2);
  auto answers = AnswerWithInverseRules(*q, catalog, source_db);
  ASSERT_TRUE(answers.ok());
  // The Skolems f_vp_B(x) and f_vr_B(y) differ, so the join fails: no
  // answers, exactly as certain answers require.
  EXPECT_TRUE(answers->empty());
}

}  // namespace
}  // namespace planorder::reformulation
