#include "base/status.h"

#include <gtest/gtest.h>

namespace planorder {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad bucket");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad bucket");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad bucket");
}

TEST(StatusTest, FactoriesProduceExpectedCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(UnavailableError("down").ToString(), "UNAVAILABLE: down");
  EXPECT_EQ(DeadlineExceededError("late").ToString(),
            "DEADLINE_EXCEEDED: late");
}

TEST(StatusTest, OkWithMessageNormalizes) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(OkStatus(), Status());
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_FALSE(NotFoundError("a") == NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
}

TEST(StatusCodeNameTest, AllNamesStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FAILED_PRECONDITION");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, OkStatusWithoutValueBecomesInternalError) {
  StatusOr<int> v = OkStatus();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string moved = std::move(v).value();
  EXPECT_EQ(moved, "hello");
}

namespace macro_helpers {

Status FailWhenNegative(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return OkStatus();
}

Status UseReturnIfError(int x) {
  PLANORDER_RETURN_IF_ERROR(FailWhenNegative(x));
  return OkStatus();
}

StatusOr<int> Double(int x) {
  if (x < 0) return InvalidArgumentError("negative");
  return 2 * x;
}

StatusOr<int> UseAssignOrReturn(int x) {
  PLANORDER_ASSIGN_OR_RETURN(int doubled, Double(x));
  return doubled + 1;
}

}  // namespace macro_helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(macro_helpers::UseReturnIfError(1).ok());
  EXPECT_EQ(macro_helpers::UseReturnIfError(-1).code(),
            StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  auto ok = macro_helpers::UseAssignOrReturn(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_EQ(macro_helpers::UseAssignOrReturn(-3).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_DEATH({ (void)v.value(); }, "");
}

}  // namespace
}  // namespace planorder
