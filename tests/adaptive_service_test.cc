/// Service-layer tests for the adaptive feedback loop (DESIGN.md §12): warm
/// restarts from the persistent plan store, corruption fallback to a cold
/// start, containment-based reformulation reuse, and the regression guard
/// that containment-mapped hits still see external residency bits before
/// their first emission (the PR-8 stale-view fix must not be bypassed by the
/// new cache path).

#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adaptive/observed_stats.h"
#include "adaptive/plan_store.h"
#include "datalog/conjunctive_query.h"
#include "exec/synthetic_domain.h"
#include "service/query_service.h"
#include "service/shared_view.h"

namespace planorder::service {
namespace {

using exec::MediatorResult;

std::unique_ptr<exec::SyntheticDomain> MakeDomain(uint64_t seed = 7) {
  stats::WorkloadOptions options;
  options.query_length = 2;
  options.bucket_size = 4;
  options.overlap_rate = 0.3;
  options.regions_per_bucket = 8;
  options.seed = seed;
  auto domain = exec::BuildSyntheticDomain(options, /*num_answers=*/120);
  EXPECT_TRUE(domain.ok()) << domain.status();
  return std::move(*domain);
}

exec::Mediator::RunLimits Limits(int max_plans) {
  exec::Mediator::RunLimits limits;
  limits.max_plans = max_plans;
  return limits;
}

std::set<std::string> AnswerSet(
    const std::vector<std::vector<datalog::Term>>& tuples) {
  std::set<std::string> rendered;
  for (const auto& tuple : tuples) {
    std::string row;
    for (const datalog::Term& term : tuple) row += term.ToString() + "|";
    rendered.insert(row);
  }
  return rendered;
}

void ExpectSameTrace(const MediatorResult& a, const MediatorResult& b) {
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].plan, b.steps[i].plan) << "step " << i;
    EXPECT_EQ(a.steps[i].sound, b.steps[i].sound) << "step " << i;
    EXPECT_EQ(a.steps[i].answers_from_plan, b.steps[i].answers_from_plan)
        << "step " << i;
    EXPECT_EQ(a.steps[i].new_answers, b.steps[i].new_answers) << "step " << i;
    EXPECT_EQ(a.steps[i].total_answers, b.steps[i].total_answers)
        << "step " << i;
  }
  EXPECT_EQ(a.total_answers, b.total_answers);
}

/// Unique per-test store path in the ctest working directory.
class StoreFile {
 public:
  explicit StoreFile(const std::string& name)
      : path_("adaptive_service_test_" + name + ".planstore") {
    std::remove(path_.c_str());
  }
  ~StoreFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A query logically equivalent to `query` but not isomorphic to it: the
/// first body atom is duplicated under fresh existential variables. The
/// identity homomorphism maps the original into the widened query, and
/// folding the duplicate back onto the original atom maps the widened query
/// into the original — mutual containment, different canonical key.
datalog::ConjunctiveQuery WidenWithRedundantAtom(
    const datalog::ConjunctiveQuery& query) {
  datalog::ConjunctiveQuery widened = query;
  datalog::Atom duplicate = widened.body.front();
  for (size_t i = 0; i < duplicate.args.size(); ++i) {
    duplicate.args[i] =
        datalog::Term::Variable("Dup" + std::to_string(i));
  }
  widened.body.push_back(std::move(duplicate));
  return widened;
}

TEST(AdaptiveServiceTest, WarmRestartReplaysByteIdentically) {
  auto d = MakeDomain();
  StoreFile file("warm");
  adaptive::PlanStore store(file.path());

  ServiceOptions options;
  options.plan_store = &store;

  // First process lifetime: cold reformulation, persisted on the miss.
  std::set<std::string> cold_answers;
  MediatorResult cold;
  {
    QueryService service(&d->catalog, &d->source_facts, options);
    EXPECT_EQ(service.Metrics().plan_store_entries_loaded, 0);
    auto session = service.OpenSession(d->query, Limits(16));
    ASSERT_TRUE(session.ok()) << session.status();
    EXPECT_FALSE((*session)->cache_hit());
    while ((*session)->NextStep().ok()) {
    }
    cold_answers = AnswerSet((*session)->Answers());
    cold = (*session)->Finish();
    EXPECT_GE(service.Metrics().plan_store_saves, 1);
  }

  // "Restart": a fresh service over the same store file. The reformulation
  // must come back from disk — a cache hit with no instance-statistics scan
  // — and replay the cold run byte for byte.
  adaptive::PlanStore reopened(file.path());
  options.plan_store = &reopened;
  QueryService warm(&d->catalog, &d->source_facts, options);
  EXPECT_GE(warm.Metrics().plan_store_entries_loaded, 1);
  EXPECT_EQ(warm.Metrics().plan_store_load_failures, 0);

  auto session = warm.OpenSession(d->query, Limits(16));
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_TRUE((*session)->cache_hit());
  while ((*session)->NextStep().ok()) {
  }
  const std::set<std::string> warm_answers = AnswerSet((*session)->Answers());
  const MediatorResult warm_result = (*session)->Finish();

  ExpectSameTrace(cold, warm_result);
  EXPECT_EQ(cold_answers, warm_answers);
  EXPECT_FALSE(cold_answers.empty());
  const ServiceMetricsSnapshot metrics = warm.Metrics();
  EXPECT_EQ(metrics.cache.hits, 1);
  EXPECT_EQ(metrics.cache.misses, 0);
}

TEST(AdaptiveServiceTest, LearnedStatisticsSurviveARestart) {
  auto d = MakeDomain();
  StoreFile file("stats");
  adaptive::PlanStore store(file.path());

  adaptive::ObservedStats learned;
  ServiceOptions options;
  options.plan_store = &store;
  options.observed_stats = &learned;
  QueryService service(&d->catalog, &d->source_facts, options);

  runtime::SourceObservation obs;
  obs.rows = 40;
  obs.attempts = 2;
  obs.failures = 1;
  obs.latency_micros = 9000;
  learned.RecordFetch("p0_v0", obs);
  obs.rows = 3;
  learned.RecordFetch("p1_v2", obs);
  learned.FoldWindow();
  ASSERT_TRUE(service.PersistPlanStore().ok());

  adaptive::PlanStore reopened(file.path());
  adaptive::ObservedStats restored;
  options.plan_store = &reopened;
  options.observed_stats = &restored;
  QueryService warm(&d->catalog, &d->source_facts, options);
  (void)warm;

  EXPECT_GT(restored.generation(), 0);
  for (const char* name : {"p0_v0", "p1_v2"}) {
    const adaptive::SourceEstimate want = learned.EstimateFor(name);
    const adaptive::SourceEstimate got = restored.EstimateFor(name);
    EXPECT_EQ(got.windows, want.windows);
    EXPECT_EQ(got.calls, want.calls);
    // Bit-exact across the hexfloat round trip.
    EXPECT_EQ(got.cardinality, want.cardinality);
    EXPECT_EQ(got.latency_ms, want.latency_ms);
    EXPECT_EQ(got.failure_prob, want.failure_prob);
  }
}

TEST(AdaptiveServiceTest, CorruptStoreFallsBackToAColdStart) {
  auto d = MakeDomain();
  StoreFile file("corrupt");
  {
    std::ofstream out(file.path());
    out << "planorder-planstore v1\nsources 6\nnot a store at all\n";
  }
  adaptive::PlanStore store(file.path());
  ServiceOptions options;
  options.plan_store = &store;
  QueryService service(&d->catalog, &d->source_facts, options);

  const ServiceMetricsSnapshot at_start = service.Metrics();
  EXPECT_EQ(at_start.plan_store_entries_loaded, 0);
  EXPECT_EQ(at_start.plan_store_load_failures, 1);

  // Queries still run (cold), and the next persist repairs the file.
  auto result = service.RunQuery(d->query, Limits(16));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->total_answers, 0u);
  ASSERT_TRUE(service.PersistPlanStore().ok());
  auto reloaded = adaptive::PlanStore(file.path()).Load();
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded->entries.size(), 1u);
}

TEST(AdaptiveServiceTest, ContainmentReuseServesEquivalentQueries) {
  auto d = MakeDomain();
  const datalog::ConjunctiveQuery widened = WidenWithRedundantAtom(d->query);

  // Control: without containment reuse the widened query is a genuine miss —
  // its canonical key differs (the redundant atom survives canonicalization,
  // so this really exercises the containment path below, not key identity).
  {
    QueryService service(&d->catalog, &d->source_facts, ServiceOptions{});
    ASSERT_TRUE(service.RunQuery(d->query, Limits(16)).ok());
    ASSERT_TRUE(service.RunQuery(widened, Limits(16)).ok());
    const ServiceMetricsSnapshot metrics = service.Metrics();
    EXPECT_EQ(metrics.cache.misses, 2);
    EXPECT_EQ(metrics.cache.hits, 0);
    EXPECT_EQ(metrics.cache.containment_hits, 0);
  }

  ServiceOptions options;
  options.containment_reuse = true;
  QueryService service(&d->catalog, &d->source_facts, options);

  auto prime = service.OpenSession(d->query, Limits(16));
  ASSERT_TRUE(prime.ok()) << prime.status();
  while ((*prime)->NextStep().ok()) {
  }
  const std::set<std::string> original_answers =
      AnswerSet((*prime)->Answers());
  const MediatorResult original = (*prime)->Finish();

  auto session = service.OpenSession(widened, Limits(16));
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_TRUE((*session)->cache_hit());
  while ((*session)->NextStep().ok()) {
  }
  const std::set<std::string> widened_answers =
      AnswerSet((*session)->Answers());
  const MediatorResult via_containment = (*session)->Finish();

  // The session ran the cached (equivalent) reformulation: identical trace,
  // identical answers, counted as a containment hit.
  ExpectSameTrace(original, via_containment);
  EXPECT_EQ(original_answers, widened_answers);
  EXPECT_FALSE(original_answers.empty());
  const ServiceMetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.cache.containment_hits, 1);
  EXPECT_EQ(metrics.cache.hits, 1);
  // The canonical key still missed before the containment scan served it.
  EXPECT_EQ(metrics.cache.misses, 2);
}

/// Residency regression guard (see ISSUE 10 satellite 6): a session served
/// through the *containment* path must still pull the external residency
/// view before its first emission — the snapshot recorded at step 0 has to
/// reflect the cache state, exactly as it does for key-identical hits.
class EverythingResident : public SharedOperationView {
 public:
  bool IsResident(const std::string&) const override { return true; }
};

TEST(AdaptiveServiceTest, ContainmentHitSeesResidencyBeforeFirstEmission) {
  auto d = MakeDomain();
  EverythingResident view;

  ServiceOptions options;
  options.containment_reuse = true;
  options.source_cache_view = &view;
  options.record_residency_snapshots = true;
  QueryService service(&d->catalog, &d->source_facts, options);

  ASSERT_TRUE(service.RunQuery(d->query, Limits(16)).ok());

  auto session =
      service.OpenSession(WidenWithRedundantAtom(d->query), Limits(16));
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_TRUE((*session)->cache_hit());
  ASSERT_TRUE((*session)->NextStep().ok());

  ASSERT_EQ(service.Metrics().cache.containment_hits, 1);
  const auto& history = (*session)->residency_history();
  ASSERT_EQ(history.size(), 1u);
  ASSERT_FALSE(history[0].empty());
  for (const std::vector<char>& bucket : history[0]) {
    ASSERT_FALSE(bucket.empty());
    for (const char resident : bucket) {
      EXPECT_NE(resident, 0) << "stale residency at first emission";
    }
  }
  (void)(*session)->Finish();
}

TEST(AdaptiveServiceTest, AdaptiveSessionsWithoutDriftMatchPlainOnes) {
  auto d = MakeDomain();

  QueryService plain(&d->catalog, &d->source_facts, ServiceOptions{});
  auto plain_result = plain.RunQuery(d->query, Limits(16));
  ASSERT_TRUE(plain_result.ok()) << plain_result.status();

  // Adaptive wrapper with zero folded observations: the blended workload is
  // bit-identical to the estimates, so the plan order must be too.
  adaptive::ObservedStats learned;
  ServiceOptions options;
  options.adaptive_reorder = true;
  options.observed_stats = &learned;
  QueryService adaptive(&d->catalog, &d->source_facts, options);
  auto adaptive_result = adaptive.RunQuery(d->query, Limits(16));
  ASSERT_TRUE(adaptive_result.ok()) << adaptive_result.status();

  ExpectSameTrace(*plain_result, *adaptive_result);
}

}  // namespace
}  // namespace planorder::service
