#include "stats/coverage_universe.h"

#include <cmath>
#include <random>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

namespace planorder::stats {
namespace {

std::vector<double> Uniform(int n) {
  return std::vector<double>(n, 1.0 / n);
}

TEST(RegionMaskTest, Basics) {
  RegionMask a{0b0110};
  RegionMask b{0b0100};
  RegionMask c{0b1000};
  EXPECT_EQ(a.count(), 2);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains(b));
  EXPECT_FALSE(b.Contains(a));
  EXPECT_EQ(a.Union(c).bits, uint64_t{0b1110});
  EXPECT_EQ(a.Intersection(b).bits, uint64_t{0b0100});
  EXPECT_TRUE(RegionMask{}.empty());
}

TEST(CoverageUniverseTest, BoxVolumeIsProductOfMaskWeights) {
  CoverageUniverse u({Uniform(4), Uniform(4)});
  // Half of each dimension: volume 1/4.
  EXPECT_DOUBLE_EQ(u.BoxVolume({RegionMask{0b0011}, RegionMask{0b0011}}), 0.25);
  // Full boxes have volume 1.
  EXPECT_DOUBLE_EQ(u.BoxVolume({RegionMask{0b1111}, RegionMask{0b1111}}), 1.0);
  EXPECT_DOUBLE_EQ(u.BoxVolume({RegionMask{0}, RegionMask{0b1111}}), 0.0);
}

TEST(CoverageUniverseTest, WeightedMaskWeight) {
  CoverageUniverse u({{0.5, 0.3, 0.2}});
  EXPECT_DOUBLE_EQ(u.MaskWeight(0, RegionMask{0b001}), 0.5);
  EXPECT_DOUBLE_EQ(u.MaskWeight(0, RegionMask{0b110}), 0.5);
  EXPECT_DOUBLE_EQ(u.MaskWeight(0, RegionMask{0b111}), 1.0);
}

TEST(CoverageUniverseTest, UncoveredStartsEqualToVolume) {
  CoverageUniverse u({Uniform(4), Uniform(4), Uniform(4)});
  std::vector<RegionMask> box = {RegionMask{0b0011}, RegionMask{0b1100},
                                 RegionMask{0b0110}};
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume(box), u.BoxVolume(box));
}

TEST(CoverageUniverseTest, AddBoxCoversExactlyItself) {
  CoverageUniverse u({Uniform(4), Uniform(4)});
  std::vector<RegionMask> executed = {RegionMask{0b0011}, RegionMask{0b0011}};
  u.AddBox(executed);
  // Same box now fully covered.
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume(executed), 0.0);
  // Disjoint box untouched.
  std::vector<RegionMask> disjoint = {RegionMask{0b1100}, RegionMask{0b1100}};
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume(disjoint), 0.25);
  // Overlapping box loses the shared cells: box {0,1}x{1,2} shares cell
  // (0..1)x(1) with the executed box -> 2 of 4 cells remain... carefully:
  // overlap = {0,1} x {1} = 2 cells of weight 1/16 each.
  std::vector<RegionMask> overlapping = {RegionMask{0b0011}, RegionMask{0b0110}};
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume(overlapping), 0.25 - 2.0 / 16.0);
}

TEST(CoverageUniverseTest, ClearForgetsExecutions) {
  CoverageUniverse u({Uniform(2), Uniform(2)});
  std::vector<RegionMask> box = {RegionMask{0b11}, RegionMask{0b11}};
  u.AddBox(box);
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume(box), 0.0);
  u.Clear();
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume(box), 1.0);
}

TEST(CoverageUniverseTest, SingleDimension) {
  CoverageUniverse u({{0.25, 0.25, 0.25, 0.25}});
  std::vector<RegionMask> box = {RegionMask{0b0111}};
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume(box), 0.75);
  u.AddBox({RegionMask{0b0011}});
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume(box), 0.25);
}

TEST(CoverageUniverseTest, EmptyMaskGivesZero) {
  CoverageUniverse u({Uniform(4), Uniform(4)});
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume({RegionMask{0}, RegionMask{0b1111}}),
                   0.0);
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume({RegionMask{0b1111}, RegionMask{0}}),
                   0.0);
}

/// Property test: the incremental bitmask implementation must agree with a
/// brute-force cell-set model across random boxes and dimensions.
class CoverageUniversePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CoverageUniversePropertyTest, MatchesBruteForceCellModel) {
  const int dims = std::get<0>(GetParam());
  const int seed = std::get<1>(GetParam());
  std::mt19937_64 rng(seed);
  const int regions = 5;
  std::vector<std::vector<double>> weights(dims);
  for (auto& w : weights) {
    w.resize(regions);
    double total = 0;
    for (double& x : w) {
      x = std::uniform_real_distribution<double>(0.1, 1.0)(rng);
      total += x;
    }
    for (double& x : w) x /= total;
  }
  CoverageUniverse u(weights);
  std::set<std::vector<int>> covered;  // brute-force covered cells

  auto random_box = [&] {
    std::vector<RegionMask> box(dims);
    for (int d = 0; d < dims; ++d) {
      box[d].bits = std::uniform_int_distribution<uint64_t>(
          0, (1u << regions) - 1)(rng);
    }
    return box;
  };
  auto brute_uncovered = [&](const std::vector<RegionMask>& box) {
    double total = 0.0;
    std::vector<int> cell(dims, 0);
    std::function<void(int, double)> walk = [&](int d, double w) {
      if (d == dims) {
        if (!covered.contains(cell)) total += w;
        return;
      }
      for (int r = 0; r < regions; ++r) {
        if (box[d].bits & (1u << r)) {
          cell[d] = r;
          walk(d + 1, w * weights[d][r]);
        }
      }
    };
    walk(0, 1.0);
    return total;
  };
  auto brute_add = [&](const std::vector<RegionMask>& box) {
    std::vector<int> cell(dims, 0);
    std::function<void(int)> walk = [&](int d) {
      if (d == dims) {
        covered.insert(cell);
        return;
      }
      for (int r = 0; r < regions; ++r) {
        if (box[d].bits & (1u << r)) {
          cell[d] = r;
          walk(d + 1);
        }
      }
    };
    walk(0);
  };

  for (int step = 0; step < 40; ++step) {
    const std::vector<RegionMask> probe = random_box();
    EXPECT_NEAR(u.UncoveredBoxVolume(probe), brute_uncovered(probe), 1e-12)
        << "dims=" << dims << " step=" << step;
    const std::vector<RegionMask> executed = random_box();
    u.AddBox(executed);
    brute_add(executed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSeeds, CoverageUniversePropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(7, 13)));

TEST(CoverageUniverseTest, SixtyFourRegionBoundary) {
  // The full-word mask edge: 64 regions exercise the n % 64 == 0 paths.
  CoverageUniverse u({Uniform(64), Uniform(64)});
  std::vector<RegionMask> all = {RegionMask{~uint64_t{0}},
                                 RegionMask{~uint64_t{0}}};
  EXPECT_NEAR(u.BoxVolume(all), 1.0, 1e-9);
  EXPECT_NEAR(u.UncoveredBoxVolume(all), 1.0, 1e-9);
  std::vector<RegionMask> half = {RegionMask{~uint64_t{0} << 32},
                                  RegionMask{~uint64_t{0}}};
  u.AddBox(half);
  EXPECT_NEAR(u.UncoveredBoxVolume(all), 0.5, 1e-9);
  u.AddBox(all);
  EXPECT_NEAR(u.UncoveredBoxVolume(all), 0.0, 1e-9);
  // Highest single region still addressable.
  std::vector<RegionMask> top_bit = {RegionMask{uint64_t{1} << 63},
                                     RegionMask{uint64_t{1} << 63}};
  EXPECT_NEAR(u.BoxVolume(top_bit), 1.0 / (64.0 * 64.0), 1e-12);
}

TEST(CoverageUniverseTest, MonotoneUnderExecutions) {
  // Diminishing returns at the universe level: adding boxes never increases
  // any uncovered volume.
  std::mt19937_64 rng(99);
  CoverageUniverse u({Uniform(6), Uniform(6), Uniform(6)});
  std::vector<RegionMask> probe = {RegionMask{0b010111}, RegionMask{0b111000},
                                   RegionMask{0b001011}};
  double last = u.UncoveredBoxVolume(probe);
  for (int i = 0; i < 30; ++i) {
    std::vector<RegionMask> executed(3);
    for (auto& m : executed) {
      m.bits = std::uniform_int_distribution<uint64_t>(0, 63)(rng);
    }
    u.AddBox(executed);
    const double now = u.UncoveredBoxVolume(probe);
    EXPECT_LE(now, last + 1e-12);
    last = now;
  }
}

TEST(CoverageUniverseFastPathTest, EmptyUniverseReturnsBoxVolume) {
  // Unnormalized weights (documented as allowed) take the same fast path.
  CoverageUniverse u({{2.0, 3.0}, {0.5, 4.0, 1.5}});
  EXPECT_EQ(u.num_covered_boxes(), 0);
  const std::vector<RegionMask> box = {RegionMask{0b11}, RegionMask{0b101}};
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume(box), u.BoxVolume(box));
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume(box), 10.0);  // (2+3) * (0.5+1.5)
}

TEST(CoverageUniverseFastPathTest, DisjointDimensionReturnsFullVolume) {
  CoverageUniverse u({Uniform(4), Uniform(4)});
  u.AddBox({RegionMask{0b0011}, RegionMask{0b0011}});
  u.AddBox({RegionMask{0b0001}, RegionMask{0b1100}});
  EXPECT_EQ(u.num_covered_boxes(), 2);
  // Disjoint from every executed box in dimension 0 -> nothing covered,
  // regardless of dimension-1 overlap.
  const std::vector<RegionMask> probe = {RegionMask{0b1100},
                                         RegionMask{0b1111}};
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume(probe), u.BoxVolume(probe));
}

TEST(CoverageUniverseFastPathTest, ContainedBoxIsFullyCovered) {
  CoverageUniverse u({Uniform(4), Uniform(4)});
  u.AddBox({RegionMask{0b0111}, RegionMask{0b1110}});
  // Inside the executed box in every dimension -> exactly zero uncovered.
  EXPECT_DOUBLE_EQ(
      u.UncoveredBoxVolume({RegionMask{0b0011}, RegionMask{0b0110}}), 0.0);
  // One region poking out in dimension 1 leaves just that column uncovered.
  EXPECT_DOUBLE_EQ(
      u.UncoveredBoxVolume({RegionMask{0b0011}, RegionMask{0b0001}}),
      2.0 / 16.0);
}

TEST(CoverageUniverseFastPathTest, ZeroWeightRegionsContributeNothing) {
  // Zero-weight prefixes are pruned subtrees; the result is exactly the
  // weighted-cell sum. Weights deliberately unnormalized.
  CoverageUniverse u({{0.0, 2.0}, {1.0, 0.0, 3.0}});
  u.AddBox({RegionMask{0b10}, RegionMask{0b100}});  // covers cell (1,2) = 6
  const std::vector<RegionMask> all = {RegionMask{0b11}, RegionMask{0b111}};
  // Total volume 2*(1+0+3) = 8 minus the covered cell's 6.
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume(all), 2.0);
  u.Clear();
  EXPECT_EQ(u.num_covered_boxes(), 0);
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume(all), u.BoxVolume(all));
}

}  // namespace
}  // namespace planorder::stats
