#include "datalog/containment.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace planorder::datalog {
namespace {

ConjunctiveQuery MustRule(std::string_view text) {
  auto rule = ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  return *rule;
}

TEST(ContainmentTest, IdenticalQueriesContainEachOther) {
  auto q = MustRule("q(X,Y) :- r(X,Z), s(Z,Y)");
  EXPECT_TRUE(IsContainedIn(q, q));
  EXPECT_TRUE(AreEquivalent(q, q));
}

TEST(ContainmentTest, MoreConstrainedIsContained) {
  // sub adds a constraint, so sub ⊆ super but not vice versa.
  auto sub = MustRule("q(X) :- r(X,Y), s(Y)");
  auto super = MustRule("q(X) :- r(X,Y)");
  EXPECT_TRUE(IsContainedIn(sub, super));
  EXPECT_FALSE(IsContainedIn(super, sub));
}

TEST(ContainmentTest, ConstantSpecializesVariable) {
  auto sub = MustRule("q(X) :- r(X, ford)");
  auto super = MustRule("q(X) :- r(X, Y)");
  EXPECT_TRUE(IsContainedIn(sub, super));
  EXPECT_FALSE(IsContainedIn(super, sub));
}

TEST(ContainmentTest, DifferentConstantsIncomparable) {
  auto a = MustRule("q(X) :- r(X, ford)");
  auto b = MustRule("q(X) :- r(X, hepburn)");
  EXPECT_FALSE(IsContainedIn(a, b));
  EXPECT_FALSE(IsContainedIn(b, a));
}

TEST(ContainmentTest, RepeatedVariableSpecializes) {
  auto sub = MustRule("q(X) :- r(X, X)");
  auto super = MustRule("q(X) :- r(X, Y)");
  EXPECT_TRUE(IsContainedIn(sub, super));
  EXPECT_FALSE(IsContainedIn(super, sub));
}

TEST(ContainmentTest, HeadPredicateMustMatch) {
  auto a = MustRule("q(X) :- r(X)");
  auto b = MustRule("p(X) :- r(X)");
  EXPECT_FALSE(IsContainedIn(a, b));
}

TEST(ContainmentTest, HeadProjectionMatters) {
  // Same body, different head variable: q(X) vs q(Y) over r(X,Y).
  auto a = MustRule("q(X) :- r(X, Y)");
  auto b = MustRule("q(Y) :- r(X, Y)");
  EXPECT_FALSE(IsContainedIn(a, b));
  EXPECT_FALSE(IsContainedIn(b, a));
}

TEST(ContainmentTest, RedundantAtomIsEquivalent) {
  // Classic: duplicated atom up to renaming folds away.
  auto a = MustRule("q(X) :- r(X,Y), r(X,Z)");
  auto b = MustRule("q(X) :- r(X,Y)");
  EXPECT_TRUE(AreEquivalent(a, b));
}

TEST(ContainmentTest, ChainVersusTriangle) {
  // Triangle (cycle) is contained in the chain pattern, not vice versa.
  auto chain = MustRule("q() :- e(X,Y), e(Y,Z)");
  auto triangle = MustRule("q() :- e(A,B), e(B,C), e(C,A)");
  EXPECT_TRUE(IsContainedIn(triangle, chain));
  EXPECT_FALSE(IsContainedIn(chain, triangle));
}

TEST(ContainmentTest, SharedVariableNamesDoNotConfuse) {
  // Both queries use X and Y; renaming-apart must handle it.
  auto a = MustRule("q(X) :- r(X, Y), s(Y)");
  auto b = MustRule("q(Y) :- r(Y, X), s(X)");
  EXPECT_TRUE(AreEquivalent(a, b));
}

TEST(ContainmentTest, MovieDomainPlanExpansion) {
  // Expansion of plan V1(ford,M),V4(R,M) in the Figure 1 domain:
  // american(M) restricts, so the expansion is contained in the query.
  auto expansion =
      MustRule("q(M,R) :- play-in(ford,M), american(M), review-of(R,M)");
  auto query = MustRule("q(M,R) :- play-in(ford,M), review-of(R,M)");
  EXPECT_TRUE(IsContainedIn(expansion, query));
  EXPECT_FALSE(IsContainedIn(query, expansion));
}

TEST(SatisfiabilityTest, PureConjunctiveAlwaysSatisfiable) {
  EXPECT_TRUE(IsSatisfiable(MustRule("q(X) :- r(X,Y), s(Y)")));
  EXPECT_TRUE(IsSatisfiable(MustRule("q(X) :- r(X, X)")));
}

TEST(SatisfiabilityTest, DetectsContradictoryBounds) {
  EXPECT_FALSE(
      IsSatisfiable(MustRule("q(X) :- r(X), lt(X, 100), gt(X, 200)")));
  EXPECT_FALSE(IsSatisfiable(MustRule("q(X) :- r(X), lt(X, 5), gt(X, 5)")));
  EXPECT_FALSE(
      IsSatisfiable(MustRule("q(X) :- r(X), le(X, 5), ge(X, 5), neq(X, 5)")));
  // Point interval without exclusion is fine.
  EXPECT_TRUE(IsSatisfiable(MustRule("q(X) :- r(X), le(X, 5), ge(X, 5)")));
  // Constant-constant contradiction.
  EXPECT_FALSE(IsSatisfiable(MustRule("q(X) :- r(X), lt(7, 3)")));
  EXPECT_TRUE(IsSatisfiable(MustRule("q(X) :- r(X), lt(3, 7)")));
}

TEST(SatisfiabilityTest, CompatibleBoundsSatisfiable) {
  EXPECT_TRUE(
      IsSatisfiable(MustRule("q(X) :- r(X), gt(X, 100), lt(X, 200)")));
  EXPECT_TRUE(IsSatisfiable(
      MustRule("q(X,Y) :- r(X,Y), lt(X, 10), gt(Y, 10)")));
}

TEST(ContainmentTest, ArityMismatchNotContained) {
  auto a = MustRule("q(X) :- r(X)");
  auto b = MustRule("q(X,Y) :- r(X), r(Y)");
  EXPECT_FALSE(IsContainedIn(a, b));
  EXPECT_FALSE(IsContainedIn(b, a));
}

}  // namespace
}  // namespace planorder::datalog
