#include "exec/mediator.h"

#include <gtest/gtest.h>

#include "core/pi.h"
#include "core/streamer.h"
#include "exec/source_access.h"
#include "exec/synthetic_domain.h"
#include "utility/cost_models.h"
#include "utility/coverage_model.h"

namespace planorder::exec {
namespace {

stats::WorkloadOptions SmallOptions(uint64_t seed = 41) {
  stats::WorkloadOptions options;
  options.query_length = 3;
  options.bucket_size = 4;
  options.overlap_rate = 0.4;
  options.regions_per_bucket = 8;
  options.seed = seed;
  return options;
}

TEST(MediatorTest, StreamsAnswersAndAccountsSteps) {
  auto domain = BuildSyntheticDomain(SmallOptions(), 300);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  utility::CoverageModel model(&d.workload);
  auto orderer = core::StreamerOrderer::Create(
      &d.workload, &model, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer.ok());

  Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  auto result = mediator.Run(**orderer, /*max_plans=*/10);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->steps.size(), 10u);
  // Identity views: every plan sound.
  EXPECT_EQ(result->sound_plans, 10u);
  size_t running = 0;
  for (const MediatorStep& step : result->steps) {
    EXPECT_TRUE(step.sound);
    EXPECT_GE(step.total_answers, running);
    running = step.total_answers;
    EXPECT_LE(step.new_answers, step.answers_from_plan);
  }
  EXPECT_EQ(result->total_answers, running);
  EXPECT_GT(result->total_answers, 0u);
}

TEST(MediatorTest, CoverageOrderingFrontLoadsAnswers) {
  // The whole point of the paper: executing plans in decreasing coverage
  // order collects answers early. The first quarter of the emitted plans
  // must collect well over a proportional share of what those plans collect
  // in total.
  auto domain = BuildSyntheticDomain(SmallOptions(43), 500);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  utility::CoverageModel model(&d.workload);
  auto orderer = core::StreamerOrderer::Create(
      &d.workload, &model, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer.ok());
  Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  const int total_plans = 32;
  auto result = mediator.Run(**orderer, total_plans);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->steps.size(), size_t{total_plans});
  const size_t after_quarter = result->steps[total_plans / 4 - 1].total_answers;
  const size_t after_all = result->steps.back().total_answers;
  ASSERT_GT(after_all, 0u);
  // A quarter of the plans, ordered by conditional coverage, should already
  // collect far more than a quarter of the answers.
  EXPECT_GT(double(after_quarter), 0.5 * double(after_all));
}

TEST(MediatorTest, EstimatedUtilityTracksNewAnswers) {
  // Estimated conditional coverage ~ new answers / num_answers per step.
  auto domain = BuildSyntheticDomain(SmallOptions(44), 600);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  utility::CoverageModel model(&d.workload);
  auto orderer = core::StreamerOrderer::Create(
      &d.workload, &model, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer.ok());
  Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  auto result = mediator.Run(**orderer, 12);
  ASSERT_TRUE(result.ok());
  for (const MediatorStep& step : result->steps) {
    const double realized = double(step.new_answers) / double(d.num_answers);
    EXPECT_NEAR(realized, step.estimated_utility, 0.07);
  }
}

TEST(MediatorTest, StopsWhenOrdererExhausted) {
  auto domain = BuildSyntheticDomain(SmallOptions(45), 50);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  utility::CoverageModel model(&d.workload);
  auto orderer = core::PiOrderer::Create(
      &d.workload, &model, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer.ok());
  Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  auto result = mediator.Run(**orderer, 1'000'000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->steps.size(), 64u);  // 4^3 plans
}

TEST(MediatorTest, AnswerTargetStopsEarly) {
  auto domain = BuildSyntheticDomain(SmallOptions(48), 400);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  utility::CoverageModel model(&d.workload);
  auto orderer = core::StreamerOrderer::Create(
      &d.workload, &model, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer.ok());
  Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  Mediator::RunLimits limits;
  limits.max_plans = 64;
  limits.answer_target = 30;
  auto result = mediator.Run(**orderer, limits);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->total_answers, 30u);
  // Stopped as soon as the target was reached: the previous step was below.
  ASSERT_GE(result->steps.size(), 2u);
  EXPECT_LT(result->steps[result->steps.size() - 2].total_answers, 30u);
  EXPECT_LT(result->steps.size(), 64u);
}

TEST(MediatorTest, CostBudgetStopsEarly) {
  auto domain = BuildSyntheticDomain(SmallOptions(49), 100);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  auto model = utility::BoundJoinCostModel::Create(&d.workload,
                                                   utility::BoundJoinOptions{});
  ASSERT_TRUE(model.ok());
  auto orderer = core::PiOrderer::Create(
      &d.workload, model->get(), {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer.ok());
  Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  Mediator::RunLimits limits;
  limits.max_plans = 64;
  // Roughly the estimated cost of the cheapest plan: stops after one or two.
  auto probe = (*orderer)->Next();
  ASSERT_TRUE(probe.ok());
  (*orderer)->ReportDiscarded();
  limits.cost_budget = -probe->utility * 1.5;
  auto result = mediator.Run(**orderer, limits);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->steps.size(), 3u);
  EXPECT_GE(result->steps.size(), 1u);
}

TEST(MediatorTest, RejectsNonPositiveMaxPlans) {
  auto domain = BuildSyntheticDomain(SmallOptions(50), 20);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  utility::CoverageModel model(&d.workload);
  auto orderer = core::PiOrderer::Create(
      &d.workload, &model, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer.ok());
  Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  Mediator::RunLimits limits;
  limits.max_plans = 0;
  EXPECT_FALSE(mediator.Run(**orderer, limits).ok());
}

TEST(MediatorTest, AccessPatternPathMatchesSetOrientedPath) {
  // The dependent-join execution path must collect exactly the same answer
  // stream as set-oriented evaluation, and report access accounting.
  auto domain = BuildSyntheticDomain(SmallOptions(47), 250);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;

  SourceRegistry registry;
  for (datalog::SourceId id = 0; id < d.catalog.num_sources(); ++id) {
    const std::string& name = d.catalog.source(id).name;
    auto source = registry.Register(name, 2);
    ASSERT_TRUE(source.ok());
    for (const auto& tuple : d.source_facts.TuplesFor(name)) {
      ASSERT_TRUE((*source)->Add(tuple).ok());
    }
  }

  Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  utility::CoverageModel model_a(&d.workload);
  auto orderer_a = core::StreamerOrderer::Create(
      &d.workload, &model_a, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer_a.ok());
  auto set_oriented = mediator.Run(**orderer_a, 16);

  utility::CoverageModel model_b(&d.workload);
  auto orderer_b = core::StreamerOrderer::Create(
      &d.workload, &model_b, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer_b.ok());
  auto dependent = mediator.Run(**orderer_b, 16, &registry);

  ASSERT_TRUE(set_oriented.ok() && dependent.ok());
  ASSERT_EQ(set_oriented->steps.size(), dependent->steps.size());
  for (size_t i = 0; i < set_oriented->steps.size(); ++i) {
    EXPECT_EQ(set_oriented->steps[i].plan, dependent->steps[i].plan);
    EXPECT_EQ(set_oriented->steps[i].answers_from_plan,
              dependent->steps[i].answers_from_plan);
    EXPECT_EQ(set_oriented->steps[i].total_answers,
              dependent->steps[i].total_answers);
  }
  EXPECT_EQ(set_oriented->total_answers, dependent->total_answers);
  // Accounting populated only on the access-pattern path.
  EXPECT_EQ(set_oriented->source_calls, 0);
  EXPECT_GT(dependent->source_calls, 0);
  EXPECT_GT(dependent->tuples_shipped, 0);
}

TEST(MediatorTest, ZeroAndNegativeLimitsMeanNoLimit) {
  // answer_target = 0 and cost_budget <= 0 both mean "no limit": the run is
  // identical to one bounded by max_plans alone.
  auto domain = BuildSyntheticDomain(SmallOptions(51), 150);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);

  utility::CoverageModel model_a(&d.workload);
  auto orderer_a = core::PiOrderer::Create(
      &d.workload, &model_a, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer_a.ok());
  auto plain = mediator.Run(**orderer_a, 64);
  ASSERT_TRUE(plain.ok());

  utility::CoverageModel model_b(&d.workload);
  auto orderer_b = core::PiOrderer::Create(
      &d.workload, &model_b, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer_b.ok());
  Mediator::RunLimits limits;
  limits.max_plans = 64;
  limits.answer_target = 0;
  limits.cost_budget = -5.0;
  auto limited = mediator.Run(**orderer_b, limits);
  ASSERT_TRUE(limited.ok());

  EXPECT_EQ(limited->steps.size(), 64u);  // 4^3 plans, nothing tripped early
  ASSERT_EQ(plain->steps.size(), limited->steps.size());
  EXPECT_EQ(plain->total_answers, limited->total_answers);
  for (size_t i = 0; i < plain->steps.size(); ++i) {
    EXPECT_EQ(plain->steps[i].total_answers, limited->steps[i].total_answers);
  }
}

TEST(MediatorTest, AnswerTargetCrossedMidPlanFinishesThatPlan) {
  // The target is checked between plans, never inside one: the run's steps
  // are an exact prefix of the unlimited run's steps, so the plan that
  // crossed the target still contributed its complete answer set (the total
  // may overshoot the target).
  auto domain = BuildSyntheticDomain(SmallOptions(52), 400);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);

  utility::CoverageModel model_a(&d.workload);
  auto orderer_a = core::StreamerOrderer::Create(
      &d.workload, &model_a, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer_a.ok());
  auto full = mediator.Run(**orderer_a, 64);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full->total_answers, 30u);

  utility::CoverageModel model_b(&d.workload);
  auto orderer_b = core::StreamerOrderer::Create(
      &d.workload, &model_b, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer_b.ok());
  Mediator::RunLimits limits;
  limits.max_plans = 64;
  limits.answer_target = 30;
  auto limited = mediator.Run(**orderer_b, limits);
  ASSERT_TRUE(limited.ok());

  ASSERT_LE(limited->steps.size(), full->steps.size());
  for (size_t i = 0; i < limited->steps.size(); ++i) {
    EXPECT_EQ(limited->steps[i].plan, full->steps[i].plan) << "step " << i;
    EXPECT_EQ(limited->steps[i].answers_from_plan,
              full->steps[i].answers_from_plan)
        << "step " << i;
    EXPECT_EQ(limited->steps[i].total_answers, full->steps[i].total_answers)
        << "step " << i;
  }
  EXPECT_GE(limited->total_answers, 30u);
  EXPECT_EQ(limited->total_answers,
            full->steps[limited->steps.size() - 1].total_answers);
}

TEST(MediatorTest, CostBudgetTripsBeforeMaxPlans) {
  // With a budget worth a handful of plans, the budget — not max_plans —
  // ends the run: estimated spend stays within budget until the final step,
  // which is the first to push it over.
  auto domain = BuildSyntheticDomain(SmallOptions(53), 100);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  auto model = utility::BoundJoinCostModel::Create(&d.workload,
                                                   utility::BoundJoinOptions{});
  ASSERT_TRUE(model.ok());
  auto probe_orderer = core::PiOrderer::Create(
      &d.workload, model->get(), {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(probe_orderer.ok());
  auto probe = (*probe_orderer)->Next();
  ASSERT_TRUE(probe.ok());

  auto model_b = utility::BoundJoinCostModel::Create(
      &d.workload, utility::BoundJoinOptions{});
  ASSERT_TRUE(model_b.ok());
  auto orderer = core::PiOrderer::Create(
      &d.workload, model_b->get(), {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer.ok());
  Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  Mediator::RunLimits limits;
  limits.max_plans = 64;
  // ~4x the cheapest plan's estimated cost: trips long before 64 plans.
  limits.cost_budget = -probe->utility * 4.0;
  auto result = mediator.Run(**orderer, limits);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->steps.size(), 64u);
  EXPECT_GE(result->steps.size(), 1u);
  // The spend crosses the budget exactly at the last executed step: before
  // every step it was still under budget, after the final one it is not.
  double spent = 0.0;
  for (size_t i = 0; i < result->steps.size(); ++i) {
    EXPECT_LT(spent, limits.cost_budget) << "step " << i;
    if (result->steps[i].sound && result->steps[i].executable &&
        !result->steps[i].failed) {
      spent += -result->steps[i].estimated_utility;
    }
  }
  EXPECT_GE(spent, limits.cost_budget);
}

TEST(MediatorTest, PiAndStreamerCollectSameAnswers) {
  auto domain = BuildSyntheticDomain(SmallOptions(46), 200);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  utility::CoverageModel model_a(&d.workload);
  utility::CoverageModel model_b(&d.workload);
  auto streamer = core::StreamerOrderer::Create(
      &d.workload, &model_a, {core::PlanSpace::FullSpace(d.workload)});
  auto pi = core::PiOrderer::Create(&d.workload, &model_b,
                                    {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(streamer.ok() && pi.ok());
  Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  auto ra = mediator.Run(**streamer, 64);
  auto rb = mediator.Run(**pi, 64);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->total_answers, rb->total_answers);
  // And the per-step answer curves agree (exact same ordering).
  for (size_t i = 0; i < ra->steps.size(); ++i) {
    EXPECT_EQ(ra->steps[i].total_answers, rb->steps[i].total_answers)
        << "step " << i;
  }
}

}  // namespace
}  // namespace planorder::exec
