/// End-to-end tests of the resilient concurrent source-access runtime
/// (src/runtime/): the parallel dependent-join path must be answer- and
/// step-equivalent to the serial mediator under a quiet (and even a noisy but
/// transient) network, deterministic from its seed, and must degrade
/// gracefully — not abort — when a source dies permanently.

#include <gtest/gtest.h>

#include "core/pi.h"
#include "core/streamer.h"
#include "datalog/parser.h"
#include "exec/dependent_join.h"
#include "exec/mediator.h"
#include "exec/source_access.h"
#include "exec/synthetic_domain.h"
#include "reformulation/bucket.h"
#include "runtime/parallel_join.h"
#include "runtime/source_runtime.h"
#include "utility/coverage_model.h"

namespace planorder::runtime {
namespace {

using datalog::Atom;
using datalog::ParseRule;
using datalog::Term;

/// The Figure 1 movie workload of the paper (see integration_movie_test.cc),
/// set up for mediation: catalog + six incomplete sources + statistics.
class MovieRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.schema().AddRelation("play-in", 2).ok());
    ASSERT_TRUE(catalog_.schema().AddRelation("review-of", 2).ok());
    ASSERT_TRUE(catalog_.schema().AddRelation("american", 1).ok());
    ASSERT_TRUE(catalog_.schema().AddRelation("russian", 1).ok());
    for (const char* text : {
             "v1(A,M) :- play-in(A,M), american(M)",
             "v2(A,M) :- play-in(A,M), russian(M)",
             "v3(A,M) :- play-in(A,M)",
             "v4(R,M) :- review-of(R,M)",
             "v5(R,M) :- review-of(R,M)",
             "v6(R,M) :- review-of(R,M)",
         }) {
      ASSERT_TRUE(catalog_.AddSourceFromText(text).ok());
    }
    auto q = ParseRule("q(M,R) :- play-in(ford,M), review-of(R,M)");
    ASSERT_TRUE(q.ok());
    query_ = *q;

    for (const char* name : {"v1", "v2", "v3", "v4", "v5", "v6"}) {
      ASSERT_TRUE(registry_.Register(name, 2).ok());
    }
    auto materialize = [&](const char* source, const char* a, const char* b) {
      source_db_.AddFact(Atom(source, {Term::Constant(a), Term::Constant(b)}));
      exec::AccessibleSource* s = registry_.Find(source);
      ASSERT_NE(s, nullptr);
      ASSERT_TRUE(s->Add({Term::Constant(a), Term::Constant(b)}).ok());
    };
    materialize("v1", "ford", "witness");
    materialize("v1", "ford", "air force one");
    materialize("v2", "ford", "anastasia");
    materialize("v3", "ford", "witness");
    materialize("v3", "ford", "sabrina");
    materialize("v3", "kate", "titanic");
    materialize("v4", "r1", "witness");
    materialize("v4", "r3", "sabrina");
    materialize("v5", "r2", "witness");
    materialize("v5", "r4", "air force one");
    materialize("v6", "r5", "anastasia");
    materialize("v6", "r1", "witness");

    auto buckets = reformulation::BuildBuckets(query_, catalog_);
    ASSERT_TRUE(buckets.ok());
    buckets_ = std::move(*buckets);
    std::vector<std::vector<stats::SourceStats>> stats(2);
    const double cardinalities[] = {2, 1, 3, 2, 2, 2};
    const double alphas[] = {0.3, 0.5, 0.2, 0.1, 0.4, 0.25};
    for (size_t b = 0; b < 2; ++b) {
      for (size_t i = 0; i < buckets_.buckets[b].size(); ++i) {
        stats::SourceStats s;
        const int id = buckets_.buckets[b][i];
        s.cardinality = cardinalities[id];
        s.transmission_cost = alphas[id];
        s.failure_prob = 0.1;
        s.regions.bits = uint64_t{1} << i;
        stats[b].push_back(s);
      }
    }
    auto workload = stats::Workload::FromParts(
        stats,
        {std::vector<double>(3, 1.0 / 3), std::vector<double>(3, 1.0 / 3)},
        5.0, {10.0, 10.0});
    ASSERT_TRUE(workload.ok());
    workload_ = std::move(*workload);
  }

  exec::Mediator MakeMediator() {
    return exec::Mediator(&catalog_, query_, &source_db_, buckets_.buckets);
  }

  /// Serial reference: the classic dependent-join mediator run.
  exec::MediatorResult SerialRun(int max_plans) {
    utility::CoverageModel model(&workload_);
    auto orderer = core::PiOrderer::Create(
        &workload_, &model, {core::PlanSpace::FullSpace(workload_)});
    EXPECT_TRUE(orderer.ok());
    exec::Mediator mediator = MakeMediator();
    auto result = mediator.Run(**orderer, max_plans, &registry_);
    EXPECT_TRUE(result.ok()) << result.status();
    return *result;
  }

  /// Runtime path with the given options.
  exec::MediatorResult RuntimeRun(int max_plans, RuntimeOptions options) {
    utility::CoverageModel model(&workload_);
    auto orderer = core::PiOrderer::Create(
        &workload_, &model, {core::PlanSpace::FullSpace(workload_)});
    EXPECT_TRUE(orderer.ok());
    exec::Mediator mediator = MakeMediator();
    SourceRuntime runtime(&registry_, options);
    exec::Mediator::RunLimits limits;
    limits.max_plans = max_plans;
    auto result = mediator.Run(**orderer, limits, runtime);
    EXPECT_TRUE(result.ok()) << result.status();
    return *result;
  }

  static void ExpectSameSteps(const exec::MediatorResult& a,
                              const exec::MediatorResult& b) {
    ASSERT_EQ(a.steps.size(), b.steps.size());
    for (size_t i = 0; i < a.steps.size(); ++i) {
      EXPECT_EQ(a.steps[i].plan, b.steps[i].plan) << "step " << i;
      EXPECT_EQ(a.steps[i].sound, b.steps[i].sound) << "step " << i;
      EXPECT_EQ(a.steps[i].answers_from_plan, b.steps[i].answers_from_plan)
          << "step " << i;
      EXPECT_EQ(a.steps[i].new_answers, b.steps[i].new_answers) << "step " << i;
      EXPECT_EQ(a.steps[i].total_answers, b.steps[i].total_answers)
          << "step " << i;
    }
    EXPECT_EQ(a.total_answers, b.total_answers);
  }

  /// Quiet network, sleeping disabled: pure concurrency, no faults.
  static RuntimeOptions QuietOptions(int threads) {
    RuntimeOptions options;
    options.num_threads = threads;
    options.time_dilation = 0.0;
    return options;
  }

  datalog::Catalog catalog_;
  datalog::ConjunctiveQuery query_;
  datalog::Database source_db_;
  exec::SourceRegistry registry_;
  reformulation::BucketResult buckets_;
  stats::Workload workload_;
};

TEST_F(MovieRuntimeTest, RuntimePathMatchesSerialMediator) {
  // The acceptance bar of the runtime: with the same seed the concurrent
  // path yields the identical distinct-answer set and step sequence as the
  // serial Mediator::Run on the movie workload.
  const exec::MediatorResult serial = SerialRun(9);
  const exec::MediatorResult concurrent = RuntimeRun(9, QuietOptions(4));
  ExpectSameSteps(serial, concurrent);
  EXPECT_EQ(concurrent.failed_plans, 0u);
  // The runtime path executed real source calls.
  EXPECT_GT(concurrent.source_calls, 0);
  EXPECT_GT(concurrent.tuples_shipped, 0);
}

TEST_F(MovieRuntimeTest, TransientFaultsAreAbsorbedByRetries) {
  // A noisy but transiently-failing network with enough retry budget loses
  // no plan: the answer stream is still identical to the serial run.
  const exec::MediatorResult serial = SerialRun(9);
  RuntimeOptions options = QuietOptions(4);
  options.seed = 1234;
  options.default_model.base_latency_ms = 5.0;
  options.default_model.per_binding_latency_ms = 1.0;
  options.default_model.latency_jitter = 0.5;
  options.default_model.transient_failure_rate = 0.4;
  options.retry.max_attempts = 64;
  const exec::MediatorResult concurrent = RuntimeRun(9, options);
  ExpectSameSteps(serial, concurrent);
  EXPECT_EQ(concurrent.failed_plans, 0u);
  EXPECT_GT(concurrent.runtime.transient_failures, 0);
  EXPECT_EQ(concurrent.runtime.retries,
            concurrent.runtime.transient_failures);
  EXPECT_GT(concurrent.runtime.latency_ms_total, 0.0);
  EXPECT_GT(concurrent.runtime.latency_ms_max, 0.0);
}

TEST_F(MovieRuntimeTest, SameSeedReplaysBitIdentically) {
  RuntimeOptions options = QuietOptions(8);
  options.seed = 777;
  options.default_model.base_latency_ms = 3.0;
  options.default_model.latency_jitter = 0.9;
  options.default_model.transient_failure_rate = 0.3;
  options.retry.max_attempts = 64;
  const exec::MediatorResult a = RuntimeRun(9, options);
  const exec::MediatorResult b = RuntimeRun(9, options);
  ExpectSameSteps(a, b);
  EXPECT_EQ(a.runtime.retries, b.runtime.retries);
  EXPECT_EQ(a.runtime.transient_failures, b.runtime.transient_failures);
  EXPECT_EQ(a.runtime.hedged_calls, b.runtime.hedged_calls);
  EXPECT_DOUBLE_EQ(a.runtime.latency_ms_total, b.runtime.latency_ms_total);
  EXPECT_DOUBLE_EQ(a.runtime.latency_ms_max, b.runtime.latency_ms_max);
}

TEST_F(MovieRuntimeTest, PermanentSourceFailureDegradesGracefully) {
  // Kill v4 for the whole run: the three plans using it must come back as
  // failed steps (discarded like unsound plans), while every other plan
  // still contributes its answers — the run completes instead of erroring.
  const exec::MediatorResult serial = SerialRun(9);
  RuntimeOptions options = QuietOptions(4);
  options.retry.max_attempts = 2;

  utility::CoverageModel model(&workload_);
  auto orderer = core::PiOrderer::Create(
      &workload_, &model, {core::PlanSpace::FullSpace(workload_)});
  ASSERT_TRUE(orderer.ok());
  exec::Mediator mediator = MakeMediator();
  SourceRuntime runtime(&registry_, options);
  NetworkModel dead;
  dead.permanently_failed = true;
  ASSERT_TRUE(runtime.remotes().Configure("v4", dead).ok());
  exec::Mediator::RunLimits limits;
  limits.max_plans = 9;
  auto result = mediator.Run(**orderer, limits, runtime);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_EQ(result->steps.size(), 9u);
  EXPECT_EQ(result->failed_plans, 3u);  // v4 appears in 3 of the 9 plans
  size_t failed = 0;
  for (const exec::MediatorStep& step : result->steps) {
    if (step.failed) {
      ++failed;
      EXPECT_EQ(step.answers_from_plan, 0u);
      EXPECT_NE(step.failure_reason.find("v4"), std::string::npos)
          << step.failure_reason;
    }
  }
  EXPECT_EQ(failed, 3u);
  EXPECT_GT(result->runtime.permanent_failures, 0);
  // Still collected every answer reachable without v4 — and losing one
  // review source must not erase the whole answer set.
  EXPECT_GT(result->total_answers, 0u);
  EXPECT_LE(result->total_answers, serial.total_answers);
}

TEST_F(MovieRuntimeTest, PlanBudgetFailsSlowPlansButRunCompletes) {
  RuntimeOptions options = QuietOptions(4);
  options.default_model.base_latency_ms = 40.0;  // every call is slow
  options.plan_budget_ms = 50.0;  // two sequential calls blow the budget
  const exec::MediatorResult result = RuntimeRun(9, options);
  EXPECT_EQ(result.steps.size(), 9u);
  EXPECT_EQ(result.failed_plans, 9u);  // every plan needs two atoms
  EXPECT_EQ(result.total_answers, 0u);
  for (const exec::MediatorStep& step : result.steps) {
    EXPECT_TRUE(step.failed);
    EXPECT_NE(step.failure_reason.find("budget"), std::string::npos);
  }
  // Without a budget the same network completes fine.
  options.plan_budget_ms = 0.0;
  const exec::MediatorResult unbounded = RuntimeRun(9, options);
  EXPECT_EQ(unbounded.failed_plans, 0u);
  EXPECT_GT(unbounded.total_answers, 0u);
}

TEST_F(MovieRuntimeTest, ParallelJoinPreservesSerialRowOrder) {
  // The partitioned batch fetch must reproduce the serial batch's row
  // sequence exactly (chunk-order merge + first-occurrence dedup).
  auto plan = ParseRule("q(M,R) :- v3(A,M), v4(R,M)");
  ASSERT_TRUE(plan.ok());
  auto serial = exec::ExecutePlanDependent(*plan, registry_);
  ASSERT_TRUE(serial.ok());

  RuntimeOptions options = QuietOptions(4);
  options.min_partition_size = 1;  // force splitting even tiny batches
  SourceRuntime runtime(&registry_, options);
  ParallelJoinOptions join_options;
  join_options.max_partitions = 4;
  join_options.min_partition_size = 1;
  exec::ExecutionTrace trace;
  auto parallel = ExecutePlanDependentParallel(
      *plan, runtime.remotes(), runtime.pool(), join_options, &trace);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(*serial, *parallel);  // same answers, same order
  ASSERT_EQ(trace.atoms.size(), 2u);
  // v3 ships 3 distinct movies to v4: split across several partition calls.
  EXPECT_GT(trace.atoms[1].calls, 1);
}

/// Larger-scale equivalence on a generated domain, exercising real pool
/// concurrency (hundreds of binding combinations per batch).
TEST(SyntheticRuntimeTest, ParallelMediatorMatchesSerialOnSyntheticDomain) {
  stats::WorkloadOptions wopts;
  wopts.query_length = 3;
  wopts.bucket_size = 4;
  wopts.overlap_rate = 0.4;
  wopts.regions_per_bucket = 8;
  wopts.seed = 41;
  auto domain = exec::BuildSyntheticDomain(wopts, 300);
  ASSERT_TRUE(domain.ok());
  const exec::SyntheticDomain& d = **domain;

  exec::SourceRegistry registry;
  for (datalog::SourceId id = 0; id < d.catalog.num_sources(); ++id) {
    const std::string& name = d.catalog.source(id).name;
    auto source = registry.Register(name, 2);
    ASSERT_TRUE(source.ok());
    for (const auto& tuple : d.source_facts.TuplesFor(name)) {
      ASSERT_TRUE((*source)->Add(tuple).ok());
    }
  }

  exec::Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  utility::CoverageModel model_a(&d.workload);
  auto orderer_a = core::StreamerOrderer::Create(
      &d.workload, &model_a, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer_a.ok());
  auto serial = mediator.Run(**orderer_a, 16, &registry);
  ASSERT_TRUE(serial.ok());

  utility::CoverageModel model_b(&d.workload);
  auto orderer_b = core::StreamerOrderer::Create(
      &d.workload, &model_b, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer_b.ok());
  RuntimeOptions options;
  options.num_threads = 8;
  options.time_dilation = 0.0;
  options.default_model.transient_failure_rate = 0.2;
  options.retry.max_attempts = 64;
  SourceRuntime runtime(&registry, options);
  exec::Mediator::RunLimits limits;
  limits.max_plans = 16;
  auto concurrent = mediator.Run(**orderer_b, limits, runtime);
  ASSERT_TRUE(concurrent.ok()) << concurrent.status();

  ASSERT_EQ(serial->steps.size(), concurrent->steps.size());
  for (size_t i = 0; i < serial->steps.size(); ++i) {
    EXPECT_EQ(serial->steps[i].plan, concurrent->steps[i].plan);
    EXPECT_EQ(serial->steps[i].answers_from_plan,
              concurrent->steps[i].answers_from_plan);
    EXPECT_EQ(serial->steps[i].total_answers,
              concurrent->steps[i].total_answers);
  }
  EXPECT_EQ(serial->total_answers, concurrent->total_answers);
  EXPECT_EQ(concurrent->failed_plans, 0u);
}

}  // namespace
}  // namespace planorder::runtime
