/// The central correctness property of the paper (Sections 4-5): Greedy,
/// iDrips, Streamer, and PI all compute the *exact* plan ordering of
/// Definition 2.1. This suite cross-checks them against the naive
/// recompute-everything brute force over randomized workloads, every
/// Section 6 utility measure, and every abstraction heuristic.
///
/// Orderings are compared by utility sequence (ties among equal-utility
/// plans may legitimately break differently) and by plan multiset.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "test_util.h"

namespace planorder {
namespace {

using core::AbstractionHeuristic;
using core::OrderedPlan;
using core::PlanSpace;
using test::Drain;
using test::MustMakeMeasure;
using test::MakeWorkload;
using test::Measure;
using test::MeasureName;

void ExpectSameUtilitySequence(const std::vector<OrderedPlan>& a,
                               const std::vector<OrderedPlan>& b,
                               const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].utility, b[i].utility, 1e-9)
        << label << " diverges at position " << i;
  }
}

void ExpectSamePlanSet(const std::vector<OrderedPlan>& a,
                       const std::vector<OrderedPlan>& b,
                       const std::string& label) {
  std::multiset<utility::ConcretePlan> sa, sb;
  for (const OrderedPlan& p : a) sa.insert(p.plan);
  for (const OrderedPlan& p : b) sb.insert(p.plan);
  EXPECT_EQ(sa, sb) << label;
}

struct AgreementCase {
  Measure measure;
  int query_length;
  int bucket_size;
  double overlap;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<AgreementCase>& info) {
  const AgreementCase& c = info.param;
  std::string name = MeasureName(c.measure) + "_m" +
                     std::to_string(c.query_length) + "_s" +
                     std::to_string(c.bucket_size) + "_seed" +
                     std::to_string(c.seed);
  std::replace(name.begin(), name.end(), '-', '_');
  return name;
}

class OrdererAgreementTest : public ::testing::TestWithParam<AgreementCase> {};

TEST_P(OrdererAgreementTest, AllAlgorithmsProduceTheExactOrdering) {
  const AgreementCase& c = GetParam();
  stats::Workload w =
      MakeWorkload(c.query_length, c.bucket_size, c.overlap, c.seed);
  const std::vector<PlanSpace> spaces = {PlanSpace::FullSpace(w)};
  const int total = static_cast<int>(spaces[0].NumPlans());

  // Reference: naive brute force, full ordering.
  auto ref_model = MustMakeMeasure(c.measure, &w);
  auto naive = core::PiOrderer::Create(&w, ref_model.get(), spaces,
                                       /*use_independence=*/false);
  ASSERT_TRUE(naive.ok());
  const std::vector<OrderedPlan> reference = Drain(**naive);
  ASSERT_EQ(static_cast<int>(reference.size()), total);
  // Utilities are non-increasing only under diminishing returns; in all
  // cases each emission must have been the argmax at its time, which the
  // cross-algorithm agreement below certifies.

  // PI with independence-based recomputation.
  {
    auto model = MustMakeMeasure(c.measure, &w);
    auto pi = core::PiOrderer::Create(&w, model.get(), spaces);
    ASSERT_TRUE(pi.ok());
    const auto plans = Drain(**pi);
    ExpectSameUtilitySequence(reference, plans, "pi vs naive");
    ExpectSamePlanSet(reference, plans, "pi vs naive");
  }

  // iDrips, every heuristic, with plain-interval and probe-lifted bounds.
  for (AbstractionHeuristic h :
       {AbstractionHeuristic::kByCardinality,
        AbstractionHeuristic::kByMaskSimilarity, AbstractionHeuristic::kRandom}) {
    for (bool probes : {false, true}) {
      auto model = MustMakeMeasure(c.measure, &w);
      auto idrips =
          core::IDripsOrderer::Create(&w, model.get(), spaces, h, probes);
      ASSERT_TRUE(idrips.ok());
      const auto plans = Drain(**idrips);
      ExpectSameUtilitySequence(reference, plans, "idrips vs naive");
      ExpectSamePlanSet(reference, plans, "idrips vs naive");
    }
  }

  // Streamer where applicable (requires diminishing returns), both bound
  // modes.
  for (bool probes : {false, true}) {
    auto model = MustMakeMeasure(c.measure, &w);
    auto streamer = core::StreamerOrderer::Create(
        &w, model.get(), spaces, AbstractionHeuristic::kByCardinality, probes);
    if (model->diminishing_returns()) {
      ASSERT_TRUE(streamer.ok()) << streamer.status();
      const auto plans = Drain(**streamer);
      ExpectSameUtilitySequence(reference, plans, "streamer vs naive");
      ExpectSamePlanSet(reference, plans, "streamer vs naive");
    } else {
      EXPECT_FALSE(streamer.ok());
      EXPECT_EQ(streamer.status().code(), StatusCode::kFailedPrecondition);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OrdererAgreementTest,
    ::testing::Values(
        // Coverage across shapes, overlaps, seeds.
        AgreementCase{Measure::kCoverage, 3, 4, 0.3, 101},
        AgreementCase{Measure::kCoverage, 3, 5, 0.3, 102},
        AgreementCase{Measure::kCoverage, 2, 7, 0.5, 103},
        AgreementCase{Measure::kCoverage, 4, 3, 0.2, 104},
        AgreementCase{Measure::kCoverage, 1, 9, 0.4, 105},
        AgreementCase{Measure::kCoverage, 3, 4, 0.8, 106},
        // Cost measure (2) with varying alpha.
        AgreementCase{Measure::kCost2, 3, 5, 0.3, 111},
        AgreementCase{Measure::kCost2, 2, 8, 0.3, 112},
        // Cost with failure, no caching (full independence).
        AgreementCase{Measure::kFailureNoCache, 3, 5, 0.3, 121},
        AgreementCase{Measure::kFailureNoCache, 4, 3, 0.3, 122},
        // Cost with failure + caching (partial dependence, no DR).
        AgreementCase{Measure::kFailureCache, 3, 4, 0.3, 131},
        AgreementCase{Measure::kFailureCache, 2, 6, 0.3, 132},
        AgreementCase{Measure::kFailureCache, 3, 5, 0.3, 133},
        // Monetary per tuple, both caching modes.
        AgreementCase{Measure::kMonetary, 3, 4, 0.3, 141},
        AgreementCase{Measure::kMonetary, 2, 7, 0.3, 142},
        AgreementCase{Measure::kMonetaryCache, 3, 4, 0.3, 151},
        AgreementCase{Measure::kMonetaryCache, 2, 5, 0.3, 152}),
    CaseName);

TEST(OrdererAgreementEdgeTest, SinglePlanWorkload) {
  stats::Workload w = MakeWorkload(2, 1, 0.3, 7);
  const std::vector<PlanSpace> spaces = {PlanSpace::FullSpace(w)};
  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  auto streamer = core::StreamerOrderer::Create(&w, model.get(), spaces);
  ASSERT_TRUE(streamer.ok());
  const auto plans = Drain(**streamer);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].plan, (utility::ConcretePlan{0, 0}));
}

TEST(OrdererAgreementEdgeTest, MultipleSpacesAgree) {
  // Hand the orderers a pre-split space set: ordering must match the naive
  // ordering over the union.
  stats::Workload w = MakeWorkload(3, 4, 0.3, 8);
  PlanSpace full = PlanSpace::FullSpace(w);
  std::vector<PlanSpace> spaces = core::SplitAround(full, {0, 0, 0});
  ASSERT_GT(spaces.size(), 1u);

  auto ref_model = MustMakeMeasure(Measure::kCoverage, &w);
  auto naive = core::PiOrderer::Create(&w, ref_model.get(), spaces,
                                       /*use_independence=*/false);
  ASSERT_TRUE(naive.ok());
  const auto reference = Drain(**naive);
  EXPECT_EQ(reference.size(), full.NumPlans() - 1);

  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  auto streamer = core::StreamerOrderer::Create(&w, model.get(), spaces);
  ASSERT_TRUE(streamer.ok());
  const auto plans = Drain(**streamer);
  ExpectSameUtilitySequence(reference, plans, "streamer multi-space");

  auto model2 = MustMakeMeasure(Measure::kCoverage, &w);
  auto idrips = core::IDripsOrderer::Create(&w, model2.get(), spaces);
  ASSERT_TRUE(idrips.ok());
  ExpectSameUtilitySequence(reference, Drain(**idrips), "idrips multi-space");
}

TEST(OrdererDiscardTest, DiscardedPlansDoNotConditionUtilities) {
  // Coverage: if every emitted plan is discarded, each next emission is
  // computed as if nothing ran, so the utilities match the unconditioned
  // coverage ranking (with already-emitted plans removed).
  stats::Workload w = MakeWorkload(3, 4, 0.3, 9);
  const std::vector<PlanSpace> spaces = {PlanSpace::FullSpace(w)};
  auto model = MustMakeMeasure(Measure::kCoverage, &w);

  // Unconditioned ranking: coverage of every plan against an empty context.
  utility::ExecutionContext fresh(&w);
  std::vector<double> unconditioned;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      for (int cc = 0; cc < 4; ++cc) {
        unconditioned.push_back(
            model->EvaluateConcrete({a, b, cc}, fresh));
      }
    }
  }
  std::sort(unconditioned.rbegin(), unconditioned.rend());

  for (auto make :
       {+[](const stats::Workload* w, utility::UtilityModel* m,
            std::vector<PlanSpace> s) -> std::unique_ptr<core::Orderer> {
          auto o = core::PiOrderer::Create(w, m, std::move(s));
          return o.ok() ? std::move(*o) : nullptr;
        },
        +[](const stats::Workload* w, utility::UtilityModel* m,
            std::vector<PlanSpace> s) -> std::unique_ptr<core::Orderer> {
          auto o = core::StreamerOrderer::Create(w, m, std::move(s));
          return o.ok() ? std::move(*o) : nullptr;
        },
        +[](const stats::Workload* w, utility::UtilityModel* m,
            std::vector<PlanSpace> s) -> std::unique_ptr<core::Orderer> {
          auto o = core::IDripsOrderer::Create(w, m, std::move(s));
          return o.ok() ? std::move(*o) : nullptr;
        }}) {
    auto orderer = make(&w, model.get(), spaces);
    ASSERT_NE(orderer, nullptr);
    std::vector<double> emitted;
    while (true) {
      auto next = orderer->Next();
      if (!next.ok()) break;
      emitted.push_back(next->utility);
      orderer->ReportDiscarded();
    }
    ASSERT_EQ(emitted.size(), unconditioned.size()) << orderer->name();
    for (size_t i = 0; i < emitted.size(); ++i) {
      EXPECT_NEAR(emitted[i], unconditioned[i], 1e-9)
          << orderer->name() << " at " << i;
    }
  }
}

}  // namespace
}  // namespace planorder
