#include "base/interval.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace planorder {
namespace {

TEST(IntervalTest, DefaultIsZeroPoint) {
  Interval i;
  EXPECT_EQ(i.lo(), 0.0);
  EXPECT_EQ(i.hi(), 0.0);
  EXPECT_TRUE(i.is_point());
}

TEST(IntervalTest, PointConstruction) {
  Interval p = Interval::Point(3.5);
  EXPECT_TRUE(p.is_point());
  EXPECT_EQ(p.lo(), 3.5);
  EXPECT_EQ(p.midpoint(), 3.5);
  EXPECT_EQ(p.width(), 0.0);
}

TEST(IntervalTest, Accessors) {
  Interval i(-1.0, 2.0);
  EXPECT_EQ(i.lo(), -1.0);
  EXPECT_EQ(i.hi(), 2.0);
  EXPECT_EQ(i.width(), 3.0);
  EXPECT_EQ(i.midpoint(), 0.5);
  EXPECT_FALSE(i.is_point());
}

TEST(IntervalTest, ContainsScalar) {
  Interval i(1.0, 2.0);
  EXPECT_TRUE(i.Contains(1.0));
  EXPECT_TRUE(i.Contains(1.5));
  EXPECT_TRUE(i.Contains(2.0));
  EXPECT_FALSE(i.Contains(0.999));
  EXPECT_FALSE(i.Contains(2.001));
}

TEST(IntervalTest, ContainsInterval) {
  Interval outer(0.0, 10.0);
  EXPECT_TRUE(outer.Contains(Interval(2.0, 3.0)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Interval(-1.0, 3.0)));
  EXPECT_FALSE(outer.Contains(Interval(5.0, 11.0)));
}

TEST(IntervalTest, Intersects) {
  EXPECT_TRUE(Interval(0, 2).Intersects(Interval(2, 3)));
  EXPECT_TRUE(Interval(0, 5).Intersects(Interval(1, 2)));
  EXPECT_FALSE(Interval(0, 1).Intersects(Interval(1.5, 2)));
}

TEST(IntervalTest, Hull) {
  Interval h = Interval::Hull(Interval(0, 1), Interval(3, 4));
  EXPECT_EQ(h, Interval(0, 4));
  EXPECT_EQ(Interval::Hull(Interval(0, 5), Interval(1, 2)), Interval(0, 5));
}

TEST(IntervalTest, Domination) {
  // l_p >= h_q is the Drips elimination test.
  EXPECT_TRUE(Interval(3, 4).DominatesOrEquals(Interval(1, 3)));
  EXPECT_TRUE(Interval(3, 4).DominatesOrEquals(Interval(1, 2)));
  EXPECT_FALSE(Interval(2.5, 4).DominatesOrEquals(Interval(1, 3)));
  EXPECT_TRUE(Interval(3, 4).StrictlyDominates(Interval(1, 2.9)));
  EXPECT_FALSE(Interval(3, 4).StrictlyDominates(Interval(1, 3)));
  // Equal points dominate each other (non-strictly).
  EXPECT_TRUE(Interval::Point(2).DominatesOrEquals(Interval::Point(2)));
}

TEST(IntervalTest, Negation) {
  EXPECT_EQ(-Interval(1, 2), Interval(-2, -1));
  EXPECT_EQ(-Interval::Point(0), Interval::Point(0));
}

TEST(IntervalTest, Addition) {
  EXPECT_EQ(Interval(1, 2) + Interval(10, 20), Interval(11, 22));
}

TEST(IntervalTest, Subtraction) {
  EXPECT_EQ(Interval(1, 2) - Interval(10, 20), Interval(-19, -8));
}

TEST(IntervalTest, MultiplicationMixedSigns) {
  EXPECT_EQ(Interval(-1, 2) * Interval(3, 4), Interval(-4, 8));
  EXPECT_EQ(Interval(-2, -1) * Interval(-3, 4), Interval(-8, 6));
}

TEST(IntervalTest, DivisionByPositive) {
  EXPECT_EQ(Interval(1, 4) / Interval(2, 2), Interval(0.5, 2));
  EXPECT_EQ(Interval(-4, 4) / Interval(1, 2), Interval(-4, 4));
}

TEST(IntervalTest, MaxMin) {
  EXPECT_EQ(Max(Interval(0, 3), Interval(1, 2)), Interval(1, 3));
  EXPECT_EQ(Min(Interval(0, 3), Interval(1, 2)), Interval(0, 2));
}

TEST(IntervalTest, ToString) {
  EXPECT_EQ(Interval(1, 2).ToString(), "[1, 2]");
}

/// Property: interval arithmetic encloses scalar arithmetic. This is the
/// contract abstract-plan evaluation relies on (Section 5.1).
class IntervalEnclosureTest : public ::testing::TestWithParam<int> {};

TEST_P(IntervalEnclosureTest, OperationsEncloseSampledScalars) {
  std::mt19937_64 rng(GetParam());
  std::uniform_real_distribution<double> bound(-10.0, 10.0);
  for (int trial = 0; trial < 200; ++trial) {
    double a1 = bound(rng), a2 = bound(rng);
    double b1 = bound(rng), b2 = bound(rng);
    Interval a(std::min(a1, a2), std::max(a1, a2));
    Interval b(std::min(b1, b2), std::max(b1, b2));
    std::uniform_real_distribution<double> in_a(a.lo(), a.hi());
    std::uniform_real_distribution<double> in_b(b.lo(), b.hi());
    for (int sample = 0; sample < 16; ++sample) {
      const double x = in_a(rng);
      const double y = in_b(rng);
      EXPECT_TRUE((a + b).Contains(x + y));
      EXPECT_TRUE((a - b).Contains(x - y));
      const Interval product = a * b;
      EXPECT_GE(x * y, product.lo() - 1e-9);
      EXPECT_LE(x * y, product.hi() + 1e-9);
      EXPECT_TRUE(Max(a, b).Contains(std::max(x, y)));
      EXPECT_TRUE(Min(a, b).Contains(std::min(x, y)));
      if (!b.Contains(0.0)) {
        const Interval quotient = a / b;
        EXPECT_GE(x / y, quotient.lo() - 1e-9);
        EXPECT_LE(x / y, quotient.hi() + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalEnclosureTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(IntervalDeathTest, InvalidBoundsAbort) {
  EXPECT_DEATH(Interval(2.0, 1.0), "invalid interval");
}

TEST(IntervalDeathTest, DivisionByZeroSpanningIntervalAborts) {
  EXPECT_DEATH(Interval(1, 2) / Interval(-1, 1), "division");
}

}  // namespace
}  // namespace planorder
