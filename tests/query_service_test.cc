#include "service/query_service.h"

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/unify.h"
#include "exec/synthetic_domain.h"

namespace planorder::service {
namespace {

using exec::MediatorResult;
using exec::MediatorStep;

std::unique_ptr<exec::SyntheticDomain> MakeDomain(uint64_t seed = 7) {
  stats::WorkloadOptions options;
  options.query_length = 2;
  options.bucket_size = 4;
  options.overlap_rate = 0.3;
  options.regions_per_bucket = 8;
  options.seed = seed;
  auto domain = exec::BuildSyntheticDomain(options, /*num_answers=*/120);
  EXPECT_TRUE(domain.ok()) << domain.status();
  return std::move(*domain);
}

exec::Mediator::RunLimits Limits(int max_plans) {
  exec::Mediator::RunLimits limits;
  limits.max_plans = max_plans;
  return limits;
}

/// Answer tuples as a canonical set of strings, for order-free comparison.
std::set<std::string> AnswerSet(
    const std::vector<std::vector<datalog::Term>>& tuples) {
  std::set<std::string> rendered;
  for (const auto& tuple : tuples) {
    std::string row;
    for (const datalog::Term& term : tuple) row += term.ToString() + "|";
    rendered.insert(row);
  }
  return rendered;
}

/// Step traces must agree plan for plan: same plan order, same per-step
/// answer accounting.
void ExpectSameTrace(const MediatorResult& a, const MediatorResult& b) {
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].plan, b.steps[i].plan) << "step " << i;
    EXPECT_EQ(a.steps[i].sound, b.steps[i].sound) << "step " << i;
    EXPECT_EQ(a.steps[i].answers_from_plan, b.steps[i].answers_from_plan)
        << "step " << i;
    EXPECT_EQ(a.steps[i].new_answers, b.steps[i].new_answers) << "step " << i;
    EXPECT_EQ(a.steps[i].total_answers, b.steps[i].total_answers)
        << "step " << i;
  }
  EXPECT_EQ(a.total_answers, b.total_answers);
}

TEST(QueryServiceTest, RunsAQueryEndToEnd) {
  auto d = MakeDomain();
  QueryService service(&d->catalog, &d->source_facts, ServiceOptions{});
  auto result = service.RunQuery(d->query, Limits(16));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->total_answers, 0u);
  EXPECT_GT(result->sound_plans, 0u);

  const ServiceMetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.sessions_admitted, 1);
  EXPECT_EQ(metrics.sessions_completed, 1);
  EXPECT_EQ(metrics.cache.misses, 1);
  EXPECT_EQ(metrics.cache.hits, 0);
  EXPECT_EQ(metrics.active_sessions, 0);
  EXPECT_EQ(metrics.latency_count, 1u);
}

TEST(QueryServiceTest, CacheHitMatchesColdRunExactly) {
  auto d = MakeDomain();
  QueryService service(&d->catalog, &d->source_facts, ServiceOptions{});

  // Cold: first run misses and populates the cache.
  auto cold_session = service.OpenSession(d->query, Limits(16));
  ASSERT_TRUE(cold_session.ok()) << cold_session.status();
  EXPECT_FALSE((*cold_session)->cache_hit());
  while ((*cold_session)->NextStep().ok()) {
  }
  const std::set<std::string> cold_answers =
      AnswerSet((*cold_session)->Answers());
  const MediatorResult cold = (*cold_session)->Finish();

  // Hot: identical query hits.
  auto hot_session = service.OpenSession(d->query, Limits(16));
  ASSERT_TRUE(hot_session.ok()) << hot_session.status();
  EXPECT_TRUE((*hot_session)->cache_hit());
  while ((*hot_session)->NextStep().ok()) {
  }
  const std::set<std::string> hot_answers =
      AnswerSet((*hot_session)->Answers());
  const MediatorResult hot = (*hot_session)->Finish();

  ExpectSameTrace(cold, hot);
  EXPECT_EQ(cold_answers, hot_answers);
  EXPECT_FALSE(cold_answers.empty());

  const ServiceMetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.cache.hits, 1);
  EXPECT_EQ(metrics.cache.misses, 1);
  EXPECT_EQ(metrics.cache_verifications, 1);
  EXPECT_EQ(metrics.cache_verification_failures, 0);
}

TEST(QueryServiceTest, IsomorphicQueryHitsAndMatches) {
  auto d = MakeDomain();
  QueryService service(&d->catalog, &d->source_facts, ServiceOptions{});
  auto cold = service.RunQuery(d->query, Limits(16));
  ASSERT_TRUE(cold.ok()) << cold.status();

  // Rename every variable (an isomorph, not a textual duplicate).
  datalog::Substitution renaming;
  auto collect = [&renaming](const datalog::Atom& atom) {
    for (const datalog::Term& term : atom.args) {
      if (term.is_variable()) {
        renaming[term.name()] =
            datalog::Term::Variable("Renamed" + term.name());
      }
    }
  };
  collect(d->query.head);
  for (const datalog::Atom& atom : d->query.body) collect(atom);
  datalog::ConjunctiveQuery isomorph(
      datalog::ApplySubstitution(d->query.head, renaming), {});
  for (const datalog::Atom& atom : d->query.body) {
    isomorph.body.push_back(datalog::ApplySubstitution(atom, renaming));
  }

  auto session = service.OpenSession(isomorph, Limits(16));
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_TRUE((*session)->cache_hit());
  while ((*session)->NextStep().ok()) {
  }
  const MediatorResult hot = (*session)->Finish();
  ExpectSameTrace(*cold, hot);
}

TEST(QueryServiceTest, CacheDisabledStillMatchesCachedRuns) {
  auto d = MakeDomain();
  ServiceOptions cached_opts;
  ServiceOptions uncached_opts;
  uncached_opts.cache_capacity = 0;
  QueryService cached(&d->catalog, &d->source_facts, cached_opts);
  QueryService uncached(&d->catalog, &d->source_facts, uncached_opts);

  auto a = cached.RunQuery(d->query, Limits(16));
  auto b = cached.RunQuery(d->query, Limits(16));  // hit
  auto c = uncached.RunQuery(d->query, Limits(16));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ExpectSameTrace(*a, *b);
  ExpectSameTrace(*a, *c);
  EXPECT_EQ(uncached.Metrics().cache.hits, 0);
}

TEST(QueryServiceTest, StreamingStepsMatchBatchRun) {
  auto d = MakeDomain();
  QueryService service(&d->catalog, &d->source_facts, ServiceOptions{});
  auto batch = service.RunQuery(d->query, Limits(8));
  ASSERT_TRUE(batch.ok()) << batch.status();

  auto session = service.OpenSession(d->query, Limits(8));
  ASSERT_TRUE(session.ok()) << session.status();
  std::vector<MediatorStep> streamed;
  while (true) {
    auto step = (*session)->NextStep();
    if (!step.ok()) {
      EXPECT_EQ(step.status().code(), StatusCode::kNotFound);
      break;
    }
    streamed.push_back(*step);
    // Progressive visibility: the session's running result tracks the steps
    // pulled so far.
    EXPECT_EQ((*session)->progress().steps.size(), streamed.size());
  }
  const MediatorResult result = (*session)->Finish();
  ASSERT_EQ(streamed.size(), batch->steps.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].plan, batch->steps[i].plan);
    EXPECT_EQ(streamed[i].total_answers, batch->steps[i].total_answers);
  }
  EXPECT_EQ(result.total_answers, batch->total_answers);
}

TEST(QueryServiceTest, AnswerTargetStopsSessionEarly) {
  auto d = MakeDomain();
  QueryService service(&d->catalog, &d->source_facts, ServiceOptions{});
  exec::Mediator::RunLimits limits = Limits(64);
  limits.answer_target = 1;
  auto result = service.RunQuery(d->query, limits);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->total_answers, 1u);
  auto unlimited = service.RunQuery(d->query, Limits(64));
  ASSERT_TRUE(unlimited.ok());
  EXPECT_LE(result->steps.size(), unlimited->steps.size());
}

TEST(QueryServiceTest, ShedsWhenQueueFullAndNoTimeout) {
  auto d = MakeDomain();
  ServiceOptions options;
  options.max_active_sessions = 1;
  options.admission_timeout_ms = 0.0;  // never wait: full = shed
  QueryService service(&d->catalog, &d->source_facts, options);

  auto held = service.OpenSession(d->query, Limits(4));
  ASSERT_TRUE(held.ok()) << held.status();

  auto rejected = service.OpenSession(d->query, Limits(4));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  const ServiceMetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.sessions_shed, 1);
  EXPECT_EQ(metrics.active_sessions, 1);

  (*held)->Finish();
  // Slot freed: admission works again.
  auto after = service.OpenSession(d->query, Limits(4));
  EXPECT_TRUE(after.ok()) << after.status();
}

TEST(QueryServiceTest, ShedsAfterAdmissionDeadline) {
  auto d = MakeDomain();
  ServiceOptions options;
  options.max_active_sessions = 1;
  options.max_queued_admissions = 4;
  options.admission_timeout_ms = 20.0;
  QueryService service(&d->catalog, &d->source_facts, options);

  auto held = service.OpenSession(d->query, Limits(4));
  ASSERT_TRUE(held.ok()) << held.status();
  auto timed_out = service.OpenSession(d->query, Limits(4));
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.Metrics().sessions_shed, 1);
  EXPECT_EQ(service.Metrics().sessions_queued, 1);
}

TEST(QueryServiceTest, QueuedAdmissionProceedsWhenSlotFrees) {
  auto d = MakeDomain();
  ServiceOptions options;
  options.max_active_sessions = 1;
  options.max_queued_admissions = 4;
  options.admission_timeout_ms = 10000.0;
  QueryService service(&d->catalog, &d->source_facts, options);

  auto held = service.OpenSession(d->query, Limits(4));
  ASSERT_TRUE(held.ok()) << held.status();

  Status waiter_status = InternalError("never ran");
  std::thread waiter([&] {
    auto result = service.RunQuery(d->query, Limits(4));
    waiter_status = result.status();
  });
  // Give the waiter time to enqueue, then free the slot.
  while (service.Metrics().queue_depth == 0 &&
         service.Metrics().sessions_completed == 0) {
    std::this_thread::yield();
  }
  (*held)->Finish();
  waiter.join();
  EXPECT_TRUE(waiter_status.ok()) << waiter_status;
  EXPECT_EQ(service.Metrics().sessions_shed, 0);
  EXPECT_EQ(service.Metrics().queue_depth_peak, 1);
}

TEST(QueryServiceTest, DroppedSessionReleasesItsSlot) {
  auto d = MakeDomain();
  ServiceOptions options;
  options.max_active_sessions = 1;
  options.admission_timeout_ms = 0.0;
  QueryService service(&d->catalog, &d->source_facts, options);
  {
    auto session = service.OpenSession(d->query, Limits(4));
    ASSERT_TRUE(session.ok());
    // Abandoned mid-stream without Finish().
    (void)(*session)->NextStep();
  }
  EXPECT_EQ(service.Metrics().active_sessions, 0);
  auto next = service.OpenSession(d->query, Limits(4));
  EXPECT_TRUE(next.ok()) << next.status();
}

TEST(QueryServiceTest, IDripsOrdererProducesSamePlansAsStreamer) {
  auto d = MakeDomain();
  ServiceOptions streamer_opts;
  ServiceOptions idrips_opts;
  idrips_opts.orderer = ServiceOptions::OrdererKind::kIDrips;
  QueryService streamer(&d->catalog, &d->source_facts, streamer_opts);
  QueryService idrips(&d->catalog, &d->source_facts, idrips_opts);
  auto a = streamer.RunQuery(d->query, Limits(16));
  auto b = idrips.RunQuery(d->query, Limits(16));
  ASSERT_TRUE(a.ok() && b.ok());
  // Both order by exact conditional coverage; totals must agree.
  EXPECT_EQ(a->total_answers, b->total_answers);
  EXPECT_EQ(a->sound_plans, b->sound_plans);
}

TEST(QueryServiceTest, SharedEvalPoolDoesNotChangeAnyRun) {
  // A service-owned evaluation pool (ServiceOptions::eval_threads) fans
  // utility evaluation out per session; the determinism contract (DESIGN.md
  // §6) promises plan order and answers identical to the serial service.
  auto d = MakeDomain();
  ServiceOptions pooled_opts;
  pooled_opts.eval_threads = 4;
  QueryService serial(&d->catalog, &d->source_facts, ServiceOptions{});
  QueryService pooled(&d->catalog, &d->source_facts, pooled_opts);
  auto a = serial.RunQuery(d->query, Limits(16));
  auto b = pooled.RunQuery(d->query, Limits(16));
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ExpectSameTrace(*a, *b);
}

TEST(QueryServiceTest, PerSessionRuntimeSnapshotIsIsolated) {
  auto d = MakeDomain();
  QueryService service(&d->catalog, &d->source_facts, ServiceOptions{});
  auto session = service.OpenSession(d->query, Limits(8));
  ASSERT_TRUE(session.ok());
  while ((*session)->NextStep().ok()) {
  }
  // Set-oriented execution: no simulated network, so the per-session
  // accounting is exactly zero (nothing from other sessions leaks in).
  const exec::RuntimeAccounting snapshot = (*session)->RuntimeSnapshot();
  EXPECT_EQ(snapshot.retries, 0);
  EXPECT_DOUBLE_EQ(snapshot.latency_ms_total, 0.0);
  (*session)->Finish();
}

}  // namespace
}  // namespace planorder::service
