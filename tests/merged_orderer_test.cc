#include "core/merged.h"

#include <gtest/gtest.h>

#include "core/pi.h"
#include "core/streamer.h"
#include "reformulation/minicon_ordering.h"
#include "reformulation/rewriting.h"
#include "datalog/parser.h"
#include "test_util.h"

namespace planorder::core {
namespace {

using test::Drain;
using test::MakeWorkload;
using test::Measure;
using test::MustMakeMeasure;

TEST(MergedOrdererTest, MergesSplitSpacesExactly) {
  // Order each split of a plan space separately, merge, and compare against
  // ordering the whole set at once (full-independence measure).
  stats::Workload w = MakeWorkload(3, 5, 0.3, 1);
  const PlanSpace full = PlanSpace::FullSpace(w);
  std::vector<PlanSpace> splits = SplitAround(full, {2, 2, 2});

  auto model = MustMakeMeasure(Measure::kFailureNoCache, &w);
  std::vector<std::unique_ptr<Orderer>> owners;
  std::vector<Orderer*> streams;
  for (const PlanSpace& split : splits) {
    auto orderer = StreamerOrderer::Create(&w, model.get(), {split});
    ASSERT_TRUE(orderer.ok());
    streams.push_back(orderer->get());
    owners.push_back(std::move(*orderer));
  }
  MergedOrderer merged(streams);

  auto ref_model = MustMakeMeasure(Measure::kFailureNoCache, &w);
  auto reference = PiOrderer::Create(&w, ref_model.get(), splits);
  ASSERT_TRUE(reference.ok());
  const auto expected = Drain(**reference);

  for (size_t i = 0; i < expected.size(); ++i) {
    auto next = merged.Next();
    ASSERT_TRUE(next.ok()) << "at " << i;
    EXPECT_NEAR(next->plan.utility, expected[i].utility, 1e-9) << "at " << i;
    EXPECT_GE(next->stream, 0);
    EXPECT_LT(next->stream, static_cast<int>(streams.size()));
  }
  auto exhausted = merged.Next();
  EXPECT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), StatusCode::kNotFound);
  EXPECT_GT(merged.plan_evaluations(), 0);
}

TEST(MiniConOrderingTest, StreamsOrderMiniConPlansByCost) {
  // The Section 7 pipeline end to end: MCDs -> generalized buckets -> plan
  // spaces -> per-space workloads -> per-space orderers -> merged stream ->
  // rewritings, in exact decreasing utility order.
  datalog::Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  ASSERT_TRUE(catalog.schema().AddRelation("r", 2).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("w(A,C) :- p(A,B), r(B,C)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("w2(A,C) :- p(A,B), r(B,C)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vp(A,B) :- p(A,B)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vr(B,C) :- r(B,C)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vr2(B,C) :- r(B,C)").ok());
  auto query = datalog::ParseRule("q(A,C) :- p(A,B), r(B,C)");
  ASSERT_TRUE(query.ok());

  auto mcds = reformulation::FormMcds(*query, catalog);
  ASSERT_TRUE(mcds.ok());
  const auto buckets = reformulation::GroupMcds(*mcds);
  const auto spaces = reformulation::BuildMcdPlanSpaces(*query, buckets);
  ASSERT_EQ(spaces.size(), 2u);  // {w|w2} and {vp} x {vr|vr2}

  // Source statistics: make w2 clearly cheapest, then w, then combinations.
  std::vector<stats::SourceStats> per_source(catalog.num_sources());
  const double cardinalities[] = {50, 10, 200, 300, 400};
  const double alphas[] = {0.2, 0.2, 0.3, 0.3, 0.3};
  for (int i = 0; i < catalog.num_sources(); ++i) {
    per_source[i].cardinality = cardinalities[i];
    per_source[i].transmission_cost = alphas[i];
  }
  auto streams = reformulation::BuildMiniConStreams(
      *mcds, buckets, spaces, per_source, /*access_overhead=*/5.0,
      /*domain_size=*/1000.0);
  ASSERT_TRUE(streams.ok()) << streams.status();
  ASSERT_EQ(streams->size(), 2u);

  std::vector<std::unique_ptr<utility::UtilityModel>> models;
  std::vector<std::unique_ptr<Orderer>> owners;
  std::vector<Orderer*> raw;
  for (reformulation::MiniConPlanStream& stream : *streams) {
    models.push_back(test::MustMakeMeasure(Measure::kCost2, &stream.workload));
    auto orderer = PiOrderer::Create(
        &stream.workload, models.back().get(),
        {PlanSpace::FullSpace(stream.workload)});
    ASSERT_TRUE(orderer.ok());
    raw.push_back(orderer->get());
    owners.push_back(std::move(*orderer));
  }
  MergedOrderer merged(raw);

  std::vector<double> utilities;
  int total = 0;
  while (true) {
    auto next = merged.Next();
    if (!next.ok()) break;
    ++total;
    utilities.push_back(next->plan.utility);
    // Map back to a rewriting and verify soundness end to end.
    const reformulation::MiniConPlanStream& stream =
        (*streams)[next->stream];
    std::vector<const reformulation::Mcd*> combo;
    for (size_t b = 0; b < next->plan.plan.size(); ++b) {
      combo.push_back(
          &(*mcds)[stream.mcd_by_bucket[b][next->plan.plan[b]]]);
    }
    auto plan = reformulation::CombineMcds(*query, catalog, combo);
    ASSERT_TRUE(plan.ok()) << plan.status();
  }
  // 2 single-MCD plans + 1 * 2 combinations.
  EXPECT_EQ(total, 4);
  for (size_t i = 1; i < utilities.size(); ++i) {
    EXPECT_LE(utilities[i], utilities[i - 1] + 1e-12);
  }
  // The cheapest is the single-atom w2 plan (tiny cardinality).
  EXPECT_NEAR(utilities[0], -(5.0 + 0.2 * 10.0), 1e-9);
}

}  // namespace
}  // namespace planorder::core
