// Tests of the sharded query service (src/cluster/): canonical routing,
// shard-aware metrics aggregation, and the cross-session utility shift — a
// warm source-operation cache changing a fresh session's plan utilities.

#include "cluster/sharded_service.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "adaptive/plan_store.h"

#include "cluster/source_cache.h"
#include "datalog/unify.h"
#include "exec/synthetic_domain.h"
#include "gtest/gtest.h"
#include "runtime/source_runtime.h"
#include "utility/measures.h"

namespace planorder::cluster {
namespace {

struct Domain {
  std::unique_ptr<exec::SyntheticDomain> synthetic;
  exec::SourceRegistry registry;
};

Domain MakeDomain(uint64_t seed = 29) {
  stats::WorkloadOptions wopts;
  wopts.query_length = 2;
  wopts.bucket_size = 3;
  wopts.overlap_rate = 0.5;
  wopts.regions_per_bucket = 8;
  wopts.seed = seed;
  auto built = exec::BuildSyntheticDomain(wopts, /*num_answers=*/120);
  EXPECT_TRUE(built.ok()) << built.status();
  Domain domain;
  domain.synthetic = std::move(*built);
  for (datalog::SourceId id = 0;
       id < domain.synthetic->catalog.num_sources(); ++id) {
    const std::string& name = domain.synthetic->catalog.source(id).name;
    auto source = domain.registry.Register(name, 2);
    EXPECT_TRUE(source.ok()) << source.status();
    for (const auto& tuple :
         domain.synthetic->source_facts.TuplesFor(name)) {
      EXPECT_TRUE((*source)->Add(tuple).ok());
    }
  }
  return domain;
}

datalog::ConjunctiveQuery RenameVariables(
    const datalog::ConjunctiveQuery& query, const char* suffix) {
  datalog::Substitution renaming;
  auto collect = [&renaming, suffix](const datalog::Atom& atom) {
    for (const datalog::Term& term : atom.args) {
      if (term.is_variable()) {
        renaming[term.name()] = datalog::Term::Variable(term.name() + suffix);
      }
    }
  };
  collect(query.head);
  for (const datalog::Atom& atom : query.body) collect(atom);
  datalog::ConjunctiveQuery renamed(
      datalog::ApplySubstitution(query.head, renaming), {});
  for (const datalog::Atom& atom : query.body) {
    renamed.body.push_back(datalog::ApplySubstitution(atom, renaming));
  }
  return renamed;
}

exec::Mediator::RunLimits FullDrain(const exec::SyntheticDomain& d) {
  exec::Mediator::RunLimits limits;
  int num_plans = 1;
  for (int b = 0; b < d.workload.num_buckets(); ++b) {
    num_plans *= d.workload.bucket_size(b);
  }
  limits.max_plans = num_plans;
  return limits;
}

TEST(ShardedServiceTest, IsomorphicQueriesRouteToOneShard) {
  Domain domain = MakeDomain();
  const exec::SyntheticDomain& d = *domain.synthetic;
  ClusterOptions options;
  options.num_shards = 4;
  ShardedService service(&d.catalog, &d.source_facts, options);
  ASSERT_EQ(service.num_shards(), 4);

  const int home = service.ShardFor(d.query);
  EXPECT_GE(home, 0);
  EXPECT_LT(home, 4);
  // Variable renaming never changes the canonical form, so never the shard.
  EXPECT_EQ(service.ShardFor(RenameVariables(d.query, "_x")), home);
  EXPECT_EQ(service.ShardFor(RenameVariables(d.query, "_yz")), home);
}

TEST(ShardedServiceTest, SessionsLandOnTheHomeShardOnly) {
  Domain domain = MakeDomain();
  const exec::SyntheticDomain& d = *domain.synthetic;
  ClusterOptions options;
  options.num_shards = 3;
  ShardedService service(&d.catalog, &d.source_facts, options);
  const int home = service.ShardFor(d.query);

  exec::Mediator::RunLimits limits;
  limits.max_plans = 1;
  for (int i = 0; i < 3; ++i) {
    auto result = service.RunQuery(RenameVariables(d.query, "_v"), limits);
    ASSERT_TRUE(result.ok()) << result.status();
  }
  const std::vector<service::ServiceMetricsSnapshot> per_shard =
      service.PerShardMetrics();
  ASSERT_EQ(int(per_shard.size()), 3);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(per_shard[size_t(s)].sessions_completed, s == home ? 3 : 0)
        << "shard " << s;
  }
}

TEST(ShardedServiceTest, MergedMetricsPoolCountersAndLatencySamples) {
  Domain domain = MakeDomain();
  const exec::SyntheticDomain& d = *domain.synthetic;
  ClusterOptions options;
  options.num_shards = 2;
  ShardedService service(&d.catalog, &d.source_facts, options);

  // The base query and its head-rotated variant are distinct canonical
  // classes; with luck they spread over both shards, but the aggregation
  // invariants below hold either way.
  datalog::ConjunctiveQuery rotated = d.query;
  if (rotated.head.args.size() > 1) {
    std::rotate(rotated.head.args.begin(), rotated.head.args.begin() + 1,
                rotated.head.args.end());
  }
  exec::Mediator::RunLimits limits;
  limits.max_plans = 1;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(service.RunQuery(d.query, limits).ok());
    ASSERT_TRUE(service.RunQuery(rotated, limits).ok());
  }

  const std::vector<service::ServiceMetricsSnapshot> per_shard =
      service.PerShardMetrics();
  const service::ServiceMetricsSnapshot merged = service.MergedMetrics();
  int64_t completed = 0;
  size_t latency_count = 0;
  double latency_max = 0.0;
  for (const auto& m : per_shard) {
    completed += m.sessions_completed;
    latency_count += m.latency_count;
    if (m.latency_max_ms > latency_max) latency_max = m.latency_max_ms;
  }
  EXPECT_EQ(merged.sessions_completed, completed);
  EXPECT_EQ(merged.sessions_completed, 4);
  // Percentiles recomputed over the pooled raw samples, not averaged.
  EXPECT_EQ(merged.latency_count, latency_count);
  EXPECT_DOUBLE_EQ(merged.latency_max_ms, latency_max);
  EXPECT_LE(merged.latency_p50_ms, merged.latency_p99_ms);
  EXPECT_LE(merged.latency_p99_ms, merged.latency_max_ms);
}

/// The tentpole semantics: a fresh session against a warm cross-session
/// cache must (a) fetch through the cache (runtime hits > 0) and (b) order
/// under *different* utilities than the cold run — the Section 6 caching
/// measure charges resident operations zero residual cost.
TEST(ShardedServiceTest, WarmCacheShiftsSecondSessionUtilities) {
  Domain domain = MakeDomain();
  const exec::SyntheticDomain& d = *domain.synthetic;

  SourceOperationCache cache;
  runtime::RuntimeOptions ropts;
  ropts.num_threads = 2;
  ropts.time_dilation = 0.0;
  ropts.source_cache = &cache;
  runtime::SourceRuntime runtime(&domain.registry, ropts);

  ClusterOptions options;
  options.num_shards = 2;
  options.source_cache = &cache;
  options.shard.orderer = service::ServiceOptions::OrdererKind::kIDrips;
  options.shard.measure = utility::MeasureKind::kFailureCache;
  ShardedService service(&d.catalog, &d.source_facts, options, &runtime);
  const exec::Mediator::RunLimits limits = FullDrain(d);

  auto drain = [&service, &d, &limits]() {
    std::vector<exec::MediatorStep> steps;
    auto session = service.OpenSession(d.query, limits);
    EXPECT_TRUE(session.ok()) << session.status();
    while (true) {
      auto step = (*session)->NextStep();
      if (!step.ok()) break;
      steps.push_back(*step);
    }
    (*session)->Finish();
    return steps;
  };

  const std::vector<exec::MediatorStep> cold = drain();
  ASSERT_FALSE(cold.empty());
  // Distinct plans of ONE session already reuse operations (intra-session
  // hits); what the cluster layer adds is the cross-session delta below.
  const int64_t cold_hits = cache.stats().hits;
  ASSERT_GT(cache.stats().resident_entries, 0);

  const std::vector<exec::MediatorStep> warm = drain();
  ASSERT_EQ(warm.size(), cold.size());
  // (a) The warm session's fetches were served by the shared cache.
  EXPECT_GT(cache.stats().hits, cold_hits);
  EXPECT_GT(service.MergedMetrics().runtime.source_cache_hits, 0);
  // (b) At least the first emission's utility reflects the residency: with
  // every source of the space resident, the failure/cache measure sees a
  // different (cheaper) world than the cold run did.
  bool utilities_differ = false;
  for (size_t i = 0; i < cold.size(); ++i) {
    if (cold[i].plan != warm[i].plan ||
        cold[i].estimated_utility != warm[i].estimated_utility) {
      utilities_differ = true;
      break;
    }
  }
  EXPECT_TRUE(utilities_differ)
      << "a fully warm cache left every utility untouched";
  // Answers are unaffected: cached rows equal fetched rows.
  size_t cold_answers = cold.back().total_answers;
  size_t warm_answers = warm.back().total_answers;
  EXPECT_EQ(cold_answers, warm_answers);
}

/// The test hook behind the sim's injected bug: with the per-step refresh
/// disabled a warm-cache session reproduces the cold utilities exactly —
/// stale, since the cache is resident. This pins the hook's semantics (and
/// with it the property's ability to catch the bug).
TEST(ShardedServiceTest, DisabledRefreshReproducesStaleUtilities) {
  Domain domain = MakeDomain();
  const exec::SyntheticDomain& d = *domain.synthetic;

  auto run_second_session = [&domain, &d](bool refresh) {
    SourceOperationCache cache;
    runtime::RuntimeOptions ropts;
    ropts.num_threads = 2;
    ropts.time_dilation = 0.0;
    ropts.source_cache = &cache;
    runtime::SourceRuntime runtime(&domain.registry, ropts);
    ClusterOptions options;
    options.num_shards = 1;
    options.source_cache = &cache;
    options.shard.orderer = service::ServiceOptions::OrdererKind::kIDrips;
    options.shard.measure = utility::MeasureKind::kFailureCache;
    options.shard.refresh_source_cache_view = refresh;
    ShardedService service(&d.catalog, &d.source_facts, options, &runtime);
    const exec::Mediator::RunLimits limits = FullDrain(d);
    // Open BOTH sessions before any execution, so the second session's
    // open-time snapshot is empty — only the per-step refresh can tell it
    // about the residency the first session's drain creates.
    auto first = service.OpenSession(d.query, limits);
    auto second = service.OpenSession(d.query, limits);
    EXPECT_TRUE(first.ok() && second.ok());
    while ((*first)->NextStep().ok()) {
    }
    (*first)->Finish();
    std::vector<double> second_utilities;
    while (true) {
      auto step = (*second)->NextStep();
      if (!step.ok()) break;
      second_utilities.push_back(step->estimated_utility);
    }
    (*second)->Finish();
    return second_utilities;
  };

  // Both sessions open before any execution, so the open-time snapshot is
  // empty: a refresh-disabled second session orders exactly like a cold one.
  const std::vector<double> fresh = run_second_session(true);
  const std::vector<double> stale = run_second_session(false);
  ASSERT_EQ(fresh.size(), stale.size());
  EXPECT_NE(fresh, stale)
      << "refresh on/off made no difference; the stale hook is dead";
}

TEST(ShardedServiceTest, PerShardPlanStoresPersistAndWarmLoad) {
  Domain domain = MakeDomain();
  const exec::SyntheticDomain& d = *domain.synthetic;
  const std::string dir = "cluster_service_test_stores";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directory(dir);
  exec::Mediator::RunLimits limits;
  limits.max_plans = 2;

  ClusterOptions options;
  options.num_shards = 2;
  options.plan_store_dir = dir;
  {
    ShardedService service(&d.catalog, &d.source_facts, options);
    ASSERT_TRUE(service.RunQuery(d.query, limits).ok());
    ASSERT_TRUE(service.PersistAll().ok());
    // Deterministic routing puts the entry in the home shard's file.
    adaptive::PlanStore home(
        dir + "/shard_" + std::to_string(service.ShardFor(d.query)) +
        ".planstore");
    auto contents = home.Load();
    ASSERT_TRUE(contents.ok()) << contents.status();
    EXPECT_EQ(contents->entries.size(), 1u);
  }

  // Cluster restart over the same directory: the home shard warm-loads the
  // reformulation and serves the query as a cache hit.
  ShardedService warm(&d.catalog, &d.source_facts, options);
  EXPECT_GE(warm.MergedMetrics().plan_store_entries_loaded, 1);
  EXPECT_EQ(warm.MergedMetrics().plan_store_load_failures, 0);
  ASSERT_TRUE(warm.RunQuery(d.query, limits).ok());
  EXPECT_EQ(warm.MergedMetrics().cache.hits, 1);
  EXPECT_EQ(warm.MergedMetrics().cache.misses, 0);
  std::filesystem::remove_all(dir);
}

TEST(ShardedServiceTest, PersistAllWithoutStoresIsAPreconditionError) {
  Domain domain = MakeDomain();
  const exec::SyntheticDomain& d = *domain.synthetic;
  ClusterOptions options;
  options.num_shards = 2;
  ShardedService service(&d.catalog, &d.source_facts, options);
  EXPECT_EQ(service.PersistAll().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace planorder::cluster
