#include "utility/combined_model.h"

#include <gtest/gtest.h>

#include "core/pi.h"
#include "core/streamer.h"
#include "test_util.h"

namespace planorder::utility {
namespace {

using core::PlanSpace;
using test::Drain;
using test::MakeWorkload;
using test::Measure;
using test::MustMakeMeasure;

TEST(CombinedModelTest, ValidatesInputs) {
  stats::Workload w = MakeWorkload(2, 3, 0.3, 1);
  EXPECT_FALSE(CombinedModel::Create(&w, {}).ok());
  auto coverage = MustMakeMeasure(Measure::kCoverage, &w);
  EXPECT_FALSE(
      CombinedModel::Create(&w, {{coverage.get(), 0.0}}).ok());
  EXPECT_FALSE(CombinedModel::Create(&w, {{nullptr, 1.0}}).ok());
  EXPECT_TRUE(CombinedModel::Create(&w, {{coverage.get(), 1.0}}).ok());
}

TEST(CombinedModelTest, EvaluatesWeightedSum) {
  stats::Workload w = MakeWorkload(3, 4, 0.3, 2);
  auto coverage = MustMakeMeasure(Measure::kCoverage, &w);
  auto cost = MustMakeMeasure(Measure::kFailureNoCache, &w);
  auto combined = CombinedModel::Create(
      &w, {{coverage.get(), 100.0}, {cost.get(), 0.5}});
  ASSERT_TRUE(combined.ok());
  ExecutionContext ctx(&w);
  const ConcretePlan plan = {1, 2, 3};
  EXPECT_NEAR((*combined)->EvaluateConcrete(plan, ctx),
              100.0 * coverage->EvaluateConcrete(plan, ctx) +
                  0.5 * cost->EvaluateConcrete(plan, ctx),
              1e-9);
}

TEST(CombinedModelTest, PropertiesComposeConservatively) {
  stats::Workload w = MakeWorkload(2, 3, 0.3, 3);
  auto coverage = MustMakeMeasure(Measure::kCoverage, &w);
  auto cost_nocache = MustMakeMeasure(Measure::kFailureNoCache, &w);
  auto cost_cache = MustMakeMeasure(Measure::kFailureCache, &w);

  auto both_dr = CombinedModel::Create(
      &w, {{coverage.get(), 1.0}, {cost_nocache.get(), 1.0}});
  ASSERT_TRUE(both_dr.ok());
  EXPECT_TRUE((*both_dr)->diminishing_returns());  // both components have DR
  EXPECT_FALSE((*both_dr)->fully_independent());   // coverage is conditional
  EXPECT_FALSE((*both_dr)->fully_monotonic());

  auto with_cache = CombinedModel::Create(
      &w, {{coverage.get(), 1.0}, {cost_cache.get(), 1.0}});
  ASSERT_TRUE(with_cache.ok());
  EXPECT_FALSE((*with_cache)->diminishing_returns());  // caching breaks DR
}

TEST(CombinedModelTest, IndependenceRequiresAllComponents) {
  stats::Workload w = MakeWorkload(2, 4, 0.3, 4);
  auto coverage = MustMakeMeasure(Measure::kCoverage, &w);
  auto cost_cache = MustMakeMeasure(Measure::kFailureCache, &w);
  auto combined = CombinedModel::Create(
      &w, {{coverage.get(), 1.0}, {cost_cache.get(), 1.0}});
  ASSERT_TRUE(combined.ok());
  // Plans sharing a source operation are dependent through the cache
  // component regardless of coverage masks.
  EXPECT_FALSE((*combined)->Independent({0, 1}, {0, 2}));
}

class CombinedOrderingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CombinedOrderingTest, ExactOrderingUnderCombinedUtility) {
  // Example 1.2's u(p) = alpha*coverage + beta*cost must order exactly, via
  // both Streamer (DR holds) and PI, matching the naive brute force.
  stats::Workload w = MakeWorkload(3, 4, 0.4, GetParam());
  auto coverage = MustMakeMeasure(Measure::kCoverage, &w);
  auto cost = MustMakeMeasure(Measure::kFailureNoCache, &w);
  auto make_combined = [&]() {
    auto combined = CombinedModel::Create(
        &w, {{coverage.get(), 50.0}, {cost.get(), 1.0}});
    EXPECT_TRUE(combined.ok());
    return std::move(*combined);
  };
  const std::vector<PlanSpace> spaces = {PlanSpace::FullSpace(w)};

  auto ref_model = make_combined();
  auto naive = core::PiOrderer::Create(&w, ref_model.get(), spaces,
                                       /*use_independence=*/false);
  ASSERT_TRUE(naive.ok());
  const auto reference = Drain(**naive);
  ASSERT_EQ(reference.size(), 64u);

  auto model_a = make_combined();
  auto streamer = core::StreamerOrderer::Create(&w, model_a.get(), spaces);
  ASSERT_TRUE(streamer.ok()) << streamer.status();
  const auto via_streamer = Drain(**streamer);
  ASSERT_EQ(via_streamer.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(via_streamer[i].utility, reference[i].utility, 1e-9)
        << "streamer at " << i;
  }

  auto model_b = make_combined();
  auto pi = core::PiOrderer::Create(&w, model_b.get(), spaces);
  ASSERT_TRUE(pi.ok());
  const auto via_pi = Drain(**pi);
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(via_pi[i].utility, reference[i].utility, 1e-9)
        << "pi at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CombinedOrderingTest,
                         ::testing::Values(71, 72, 73));

TEST(CombinedModelTest, EnclosurePropertyHolds) {
  stats::Workload w = MakeWorkload(3, 6, 0.3, 5);
  auto coverage = MustMakeMeasure(Measure::kCoverage, &w);
  auto cost = MustMakeMeasure(Measure::kCost2, &w);
  auto combined = CombinedModel::Create(
      &w, {{coverage.get(), 10.0}, {cost.get(), 0.1}});
  ASSERT_TRUE(combined.ok());
  ExecutionContext ctx(&w);
  const core::PlanSpace space = PlanSpace::FullSpace(w);
  const core::AbstractionForest forest = core::AbstractionForest::Build(
      w, space, core::AbstractionHeuristic::kByCardinality);
  core::AbstractPlan top;
  top.forest = &forest;
  for (int b = 0; b < 3; ++b) top.nodes.push_back(forest.root(b));
  const auto summaries = top.Summaries();
  const Interval interval = (*combined)->Evaluate(
      NodeSpan(summaries.data(), summaries.size()), ctx);
  for (int a = 0; a < 6; ++a) {
    for (int b = 0; b < 6; ++b) {
      for (int c = 0; c < 6; ++c) {
        const double u = (*combined)->EvaluateConcrete({a, b, c}, ctx);
        EXPECT_GE(u, interval.lo() - 1e-9);
        EXPECT_LE(u, interval.hi() + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace planorder::utility
