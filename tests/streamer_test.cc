#include "core/streamer.h"

#include <gtest/gtest.h>

#include "core/pi.h"
#include "test_util.h"

namespace planorder::core {
namespace {

using test::Drain;
using test::MustMakeMeasure;
using test::MakeWorkload;
using test::Measure;

TEST(StreamerTest, RefusesMeasuresWithoutDiminishingReturns) {
  stats::Workload w = MakeWorkload(3, 4, 0.3, 1);
  auto model = MustMakeMeasure(Measure::kFailureCache, &w);
  auto streamer =
      StreamerOrderer::Create(&w, model.get(), {PlanSpace::FullSpace(w)});
  EXPECT_FALSE(streamer.ok());
  EXPECT_EQ(streamer.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StreamerTest, GraphStaysSmallWithFullIndependence) {
  // With a no-caching cost measure every link stays valid forever, so the
  // dominance graph never needs re-expansion: subsequent emissions should
  // add few evaluations.
  stats::Workload w = MakeWorkload(3, 12, 0.3, 2);
  auto model = MustMakeMeasure(Measure::kFailureNoCache, &w);
  auto streamer =
      StreamerOrderer::Create(&w, model.get(), {PlanSpace::FullSpace(w)});
  ASSERT_TRUE(streamer.ok());
  (void)Drain(**streamer, 1);
  const int64_t after_first = (*streamer)->plan_evaluations();
  (void)Drain(**streamer, 9);
  const int64_t after_ten = (*streamer)->plan_evaluations();
  // First plan costs the bulk; nine more cost less than nine times that.
  EXPECT_LT(after_ten - after_first, 9 * after_first);
  // And far fewer total evaluations than brute force (1728 plans, 10 rounds).
  EXPECT_LT(after_ten, 1728);
}

TEST(StreamerTest, EvaluatesFarFewerPlansThanPiInFirstIteration) {
  // The paper reports < 4% of PI's first-iteration evaluations for coverage;
  // assert a slightly looser 10% so seed changes don't flake.
  stats::Workload w = MakeWorkload(3, 12, 0.3, 3);
  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  const std::vector<PlanSpace> spaces = {PlanSpace::FullSpace(w)};

  auto streamer = StreamerOrderer::Create(&w, model.get(), spaces);
  ASSERT_TRUE(streamer.ok());
  (void)Drain(**streamer, 1);

  auto model2 = MustMakeMeasure(Measure::kCoverage, &w);
  auto pi = PiOrderer::Create(&w, model2.get(), spaces);
  ASSERT_TRUE(pi.ok());
  (void)Drain(**pi, 1);

  EXPECT_LT((*streamer)->plan_evaluations(), (*pi)->plan_evaluations() / 10);
}

TEST(StreamerTest, IntrospectionCountsAreConsistent) {
  stats::Workload w = MakeWorkload(3, 6, 0.3, 4);
  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  auto streamer =
      StreamerOrderer::Create(&w, model.get(), {PlanSpace::FullSpace(w)});
  ASSERT_TRUE(streamer.ok());
  EXPECT_EQ((*streamer)->num_alive_nodes(), 1);  // the top plan
  EXPECT_EQ((*streamer)->num_alive_links(), 0);
  const auto plans = Drain(**streamer, 5);
  ASSERT_EQ(plans.size(), 5u);
  EXPECT_GT((*streamer)->num_alive_nodes(), 0);
  // Emitted plans are removed from the graph; the partition invariant means
  // alive nodes can represent at most 216 - 5 + ... plans; just sanity-check
  // the counts are nonnegative and bounded by total node allocations.
  EXPECT_LE((*streamer)->num_alive_links(),
            (*streamer)->num_alive_nodes() * (*streamer)->num_alive_nodes());
}

TEST(StreamerTest, DrainEmitsEveryPlanExactlyOnce) {
  stats::Workload w = MakeWorkload(3, 5, 0.5, 5);
  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  auto streamer =
      StreamerOrderer::Create(&w, model.get(), {PlanSpace::FullSpace(w)});
  ASSERT_TRUE(streamer.ok());
  const auto plans = Drain(**streamer);
  EXPECT_EQ(plans.size(), 125u);
  std::set<utility::ConcretePlan> unique;
  for (const auto& p : plans) unique.insert(p.plan);
  EXPECT_EQ(unique.size(), 125u);
}

TEST(StreamerTest, CoverageUtilitiesNonIncreasing) {
  // Under diminishing returns the emitted utility sequence is non-increasing
  // (the next-best conditional utility can only fall as more executes).
  stats::Workload w = MakeWorkload(3, 6, 0.4, 6);
  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  auto streamer =
      StreamerOrderer::Create(&w, model.get(), {PlanSpace::FullSpace(w)});
  ASSERT_TRUE(streamer.ok());
  const auto plans = Drain(**streamer);
  for (size_t i = 1; i < plans.size(); ++i) {
    EXPECT_LE(plans[i].utility, plans[i - 1].utility + 1e-9) << "at " << i;
  }
}

TEST(StreamerTest, StalenessChecksScaleWithEmissionsNotRefinements) {
  // Regression guard for the frontier-candidate rescan: the nondominated
  // frontier is staleness-checked once per emission (step 2.a), not once per
  // refinement. A drain of E emissions over a frontier of at most F nodes
  // must perform at most E * F_max checks; the old per-refinement rescan
  // multiplied that by the refinements per emission (tens here, since every
  // ComputeNext re-walked the whole frontier after each split).
  stats::Workload w = MakeWorkload(3, 8, 0.5, 8);
  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  auto streamer =
      StreamerOrderer::Create(&w, model.get(), {PlanSpace::FullSpace(w)});
  ASSERT_TRUE(streamer.ok());
  const auto plans = Drain(**streamer);
  ASSERT_EQ(plans.size(), 512u);
  // Frontier size is bounded by the alive-node count, itself bounded by the
  // number of leaves (512) — but in practice it stays far smaller. Assert
  // the per-emission average against the hard frontier bound; the old
  // behavior exceeded it by the refinement count per emission.
  const int64_t checks = (*streamer)->num_staleness_checks();
  EXPECT_GT(checks, 0);
  EXPECT_LE(checks, int64_t{512} * 512);
  // Tighter practical bound: average frontier seen per emission stays well
  // under 64 nodes for this workload.
  EXPECT_LT(checks, int64_t{512} * 64);
}

TEST(StreamerTest, HighOverlapStillExact) {
  // High overlap invalidates most links (the paper's observed slowdown);
  // correctness must not degrade.
  stats::Workload w = MakeWorkload(3, 5, 0.9, 7);
  auto model = MustMakeMeasure(Measure::kCoverage, &w);
  const std::vector<PlanSpace> spaces = {PlanSpace::FullSpace(w)};
  auto streamer = StreamerOrderer::Create(&w, model.get(), spaces);
  ASSERT_TRUE(streamer.ok());
  auto model2 = MustMakeMeasure(Measure::kCoverage, &w);
  auto naive =
      PiOrderer::Create(&w, model2.get(), spaces, /*use_independence=*/false);
  ASSERT_TRUE(naive.ok());
  const auto a = Drain(**streamer);
  const auto b = Drain(**naive);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].utility, b[i].utility, 1e-9) << "at " << i;
  }
}

}  // namespace
}  // namespace planorder::core
