#include "runtime/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

namespace planorder::runtime {
namespace {

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, RunsEveryTaskInABatch) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<int> counter{0};
  const int kTasks = 1000;
  for (int i = 0; i < kTasks; ++i) {
    group.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  // Two tasks that each wait for the other's arrival can only finish when at
  // least two workers run them at the same time.
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  auto rendezvous = [&] {
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    cv.wait(lock, [&] { return arrived == 2; });
  };
  group.Submit(rendezvous);
  group.Submit(rendezvous);
  group.Wait();
  EXPECT_EQ(arrived, 2);
}

TEST(ThreadPoolTest, GroupIsReusableAcrossBatches) {
  ThreadPool pool(3);
  TaskGroup group(&pool);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      group.Submit([&counter] { ++counter; });
    }
    group.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPoolTest, NestedSubmissionFromWithinATask) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    group.Submit([&group, &counter] {
      ++counter;
      group.Submit([&counter] { ++counter; });
    });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
        ++counter;
      });
    }
    // Destruction must run everything already submitted.
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ManyGroupsShareOnePool) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::unique_ptr<TaskGroup>> groups;
  for (int g = 0; g < 4; ++g) {
    groups.push_back(std::make_unique<TaskGroup>(&pool));
    for (int i = 0; i < 50; ++i) {
      groups.back()->Submit([&counter] { ++counter; });
    }
  }
  for (auto& group : groups) group->Wait();
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace planorder::runtime
