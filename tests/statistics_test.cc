#include "reformulation/statistics.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/streamer.h"
#include "datalog/parser.h"
#include "exec/mediator.h"
#include "exec/synthetic_domain.h"
#include "utility/coverage_model.h"

namespace planorder::reformulation {
namespace {

using datalog::Atom;
using datalog::ConjunctiveQuery;
using datalog::ParseAtom;
using datalog::ParseRule;
using datalog::Term;

Atom MustAtom(std::string_view text) {
  auto atom = ParseAtom(text);
  EXPECT_TRUE(atom.ok()) << atom.status();
  return *atom;
}

TEST(EstimateWorkloadTest, CardinalitiesMatchInstanceCounts) {
  datalog::Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("play-in", 2).ok());
  ASSERT_TRUE(catalog.schema().AddRelation("review-of", 2).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v1(A,M) :- play-in(A,M)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v4(R,M) :- review-of(R,M)").ok());
  auto query = ParseRule("q(M,R) :- play-in(ford,M), review-of(R,M)");
  ASSERT_TRUE(query.ok());
  auto buckets = BuildBuckets(*query, catalog);
  ASSERT_TRUE(buckets.ok());

  datalog::Database facts;
  facts.AddFact(MustAtom("v1(ford, witness)"));
  facts.AddFact(MustAtom("v1(ford, sabrina)"));
  facts.AddFact(MustAtom("v1(kate, titanic)"));  // not for ford: excluded
  facts.AddFact(MustAtom("v4(r1, witness)"));

  auto workload =
      EstimateWorkloadFromInstances(*query, catalog, *buckets, facts);
  ASSERT_TRUE(workload.ok()) << workload.status();
  // v1 contributes 2 bindings for "movies starring ford" (kate filtered by
  // the query constant), v4 one review binding.
  EXPECT_DOUBLE_EQ(workload->source(0, 0).cardinality, 2.0);
  EXPECT_DOUBLE_EQ(workload->source(1, 0).cardinality, 1.0);
}

TEST(EstimateWorkloadTest, OverlapReflectsSharedBindings) {
  datalog::Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  for (const char* text :
       {"a(X,Y) :- p(X,Y)", "b(X,Y) :- p(X,Y)", "c(X,Y) :- p(X,Y)"}) {
    ASSERT_TRUE(catalog.AddSourceFromText(text).ok());
  }
  auto query = ParseRule("q(X,Y) :- p(X,Y)");
  ASSERT_TRUE(query.ok());
  auto buckets = BuildBuckets(*query, catalog);
  ASSERT_TRUE(buckets.ok());

  datalog::Database facts;
  // a and b share (x1,y1); c is disjoint from both.
  facts.AddFact(MustAtom("a(x1, y1)"));
  facts.AddFact(MustAtom("a(x2, y2)"));
  facts.AddFact(MustAtom("b(x1, y1)"));
  facts.AddFact(MustAtom("c(x9, y9)"));

  auto workload =
      EstimateWorkloadFromInstances(*query, catalog, *buckets, facts);
  ASSERT_TRUE(workload.ok());
  const stats::RegionMask ma = workload->source(0, 0).regions;
  const stats::RegionMask mb = workload->source(0, 1).regions;
  EXPECT_TRUE(ma.Intersects(mb));  // shared binding -> shared region
  // Disjoint contents MAY collide under hashing, but with 16 regions and
  // these fixed constants they do not; assert the expected structure.
  const stats::RegionMask mc = workload->source(0, 2).regions;
  EXPECT_FALSE(ma.Intersects(mc));
  EXPECT_FALSE(mb.Intersects(mc));
}

TEST(EstimateWorkloadTest, OverridesCarryCostParameters) {
  datalog::Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 1).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v(X) :- p(X)").ok());
  auto query = ParseRule("q(X) :- p(X)");
  ASSERT_TRUE(query.ok());
  auto buckets = BuildBuckets(*query, catalog);
  ASSERT_TRUE(buckets.ok());
  datalog::Database facts;
  facts.AddFact(MustAtom("v(a)"));

  EstimateOptions options;
  stats::SourceStats v_stats;
  v_stats.transmission_cost = 0.77;
  v_stats.failure_prob = 0.2;
  v_stats.fee = 3.0;
  options.overrides["v"] = v_stats;
  auto workload = EstimateWorkloadFromInstances(*query, catalog, *buckets,
                                                facts, options);
  ASSERT_TRUE(workload.ok());
  EXPECT_DOUBLE_EQ(workload->source(0, 0).transmission_cost, 0.77);
  EXPECT_DOUBLE_EQ(workload->source(0, 0).failure_prob, 0.2);
  EXPECT_DOUBLE_EQ(workload->source(0, 0).fee, 3.0);
  // Cardinality still estimated from data, not taken from the override.
  EXPECT_DOUBLE_EQ(workload->source(0, 0).cardinality, 1.0);
}

TEST(EstimateWorkloadTest, EstimatedWorkloadDrivesAccurateOrdering) {
  // The acid test: materialize a synthetic domain, throw away its designed
  // statistics, re-estimate them from the instances, and check that the
  // coverage estimates on the estimated workload track the real per-plan
  // answer counts.
  stats::WorkloadOptions options;
  options.query_length = 2;
  options.bucket_size = 4;
  options.overlap_rate = 0.4;
  options.regions_per_bucket = 8;
  options.seed = 91;
  auto domain = exec::BuildSyntheticDomain(options, /*num_answers=*/600);
  ASSERT_TRUE(domain.ok());
  const exec::SyntheticDomain& d = **domain;

  auto buckets = BuildBuckets(d.query, d.catalog);
  ASSERT_TRUE(buckets.ok());
  EstimateOptions estimate_options;
  estimate_options.regions_per_bucket = 32;
  auto estimated = EstimateWorkloadFromInstances(
      d.query, d.catalog, *buckets, d.source_facts, estimate_options);
  ASSERT_TRUE(estimated.ok()) << estimated.status();

  // Cardinalities must match the materialized counts exactly (the domain
  // generator sets them the same way).
  for (int b = 0; b < 2; ++b) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(estimated->source(b, i).cardinality,
                       d.workload.source(b, i).cardinality)
          << "bucket " << b << " source " << i;
    }
  }

  // Order plans by coverage on the ESTIMATED workload and execute them.
  // Hash-based estimation is coarser than designed statistics, so assert
  // robust properties: the first plan is a top-quartile plan by actual
  // answer count, and the curve front-loads at least proportionally.
  utility::CoverageModel model(&*estimated);
  auto orderer = core::StreamerOrderer::Create(
      &*estimated, &model, {core::PlanSpace::FullSpace(*estimated)});
  ASSERT_TRUE(orderer.ok());
  exec::Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  auto result = mediator.Run(**orderer, 16);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->steps.size(), 16u);
  const size_t quarter = result->steps[3].total_answers;
  const size_t full = result->steps.back().total_answers;
  ASSERT_GT(full, 0u);
  // Signature regions reconstruct the generator's cluster structure, so the
  // estimated-statistics ordering front-loads strongly.
  EXPECT_GT(double(quarter), 0.4 * double(full));

  // Actual per-plan answer counts over all 16 plans.
  std::vector<size_t> actual_counts;
  for (const exec::MediatorStep& step : result->steps) {
    actual_counts.push_back(step.answers_from_plan);
  }
  std::vector<size_t> sorted = actual_counts;
  std::sort(sorted.rbegin(), sorted.rend());
  EXPECT_GE(actual_counts.front(), sorted[sorted.size() / 4])
      << "estimated ordering's first plan should be top-quartile by yield";
}

TEST(EstimateWorkloadTest, ValidatesInputs) {
  datalog::Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 1).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("v(X) :- p(X)").ok());
  auto query = ParseRule("q(X) :- p(X)");
  ASSERT_TRUE(query.ok());
  auto buckets = BuildBuckets(*query, catalog);
  ASSERT_TRUE(buckets.ok());
  datalog::Database facts;
  EstimateOptions options;
  options.regions_per_bucket = 0;
  EXPECT_FALSE(EstimateWorkloadFromInstances(*query, catalog, *buckets, facts,
                                             options)
                   .ok());
  // Mismatched buckets.
  BucketResult wrong;
  EXPECT_FALSE(
      EstimateWorkloadFromInstances(*query, catalog, wrong, facts).ok());
}

}  // namespace
}  // namespace planorder::reformulation
