#include "core/plan_space.h"

#include <set>

#include <gtest/gtest.h>

namespace planorder::core {
namespace {

stats::Workload MakeWorkload(int query_length, int bucket_size) {
  stats::WorkloadOptions options;
  options.query_length = query_length;
  options.bucket_size = bucket_size;
  options.seed = 5;
  auto w = stats::Workload::Generate(options);
  EXPECT_TRUE(w.ok());
  return std::move(*w);
}

std::set<ConcretePlan> AllPlans(const PlanSpace& space) {
  std::set<ConcretePlan> plans;
  ConcretePlan plan(space.buckets.size());
  std::vector<size_t> cursor(space.buckets.size(), 0);
  while (true) {
    for (size_t b = 0; b < space.buckets.size(); ++b) {
      plan[b] = space.buckets[b][cursor[b]];
    }
    plans.insert(plan);
    size_t b = 0;
    for (; b < space.buckets.size(); ++b) {
      if (++cursor[b] < space.buckets[b].size()) break;
      cursor[b] = 0;
    }
    if (b == space.buckets.size()) break;
  }
  return plans;
}

TEST(PlanSpaceTest, FullSpaceShape) {
  stats::Workload w = MakeWorkload(3, 4);
  PlanSpace space = PlanSpace::FullSpace(w);
  EXPECT_EQ(space.num_buckets(), 3);
  EXPECT_EQ(space.NumPlans(), 64u);
  EXPECT_TRUE(space.Contains({0, 1, 2}));
  EXPECT_FALSE(space.Contains({0, 1}));
  EXPECT_FALSE(space.Contains({0, 1, 4}));
}

TEST(PlanSpaceTest, SplitMatchesPaperExample) {
  // Figure 2: removing V1V5 from {V1,V2,V3} x {V4,V5,V6} leaves
  // S3 = {V2,V3} x {V4,V5,V6} and S5 = {V1} x {V4,V6}.
  PlanSpace s1;
  s1.buckets = {{0, 1, 2}, {3, 4, 5}};
  std::vector<PlanSpace> splits = SplitAround(s1, {0, 4});
  ASSERT_EQ(splits.size(), 2u);
  EXPECT_EQ(splits[0].buckets, (std::vector<std::vector<int>>{{1, 2}, {3, 4, 5}}));
  EXPECT_EQ(splits[1].buckets, (std::vector<std::vector<int>>{{0}, {3, 5}}));
}

TEST(PlanSpaceTest, SplitIsExactPartitionOfRemainder) {
  stats::Workload w = MakeWorkload(3, 3);
  PlanSpace space = PlanSpace::FullSpace(w);
  const ConcretePlan removed = {1, 0, 2};
  std::set<ConcretePlan> expected = AllPlans(space);
  expected.erase(removed);

  std::set<ConcretePlan> actual;
  uint64_t total = 0;
  for (const PlanSpace& split : SplitAround(space, removed)) {
    total += split.NumPlans();
    for (const ConcretePlan& p : AllPlans(split)) {
      EXPECT_TRUE(actual.insert(p).second) << "plan appears in two splits";
    }
  }
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(total, expected.size());  // disjointness double-check
}

TEST(PlanSpaceTest, SplitSingletonSpaceYieldsNothing) {
  PlanSpace space;
  space.buckets = {{2}, {5}};
  EXPECT_TRUE(SplitAround(space, {2, 5}).empty());
}

TEST(PlanSpaceTest, SplitDropsEmptyBuckets) {
  PlanSpace space;
  space.buckets = {{1}, {2, 3}};
  // Removing (1,2): bucket 0 minus {1} is empty -> only the second split.
  std::vector<PlanSpace> splits = SplitAround(space, {1, 2});
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_EQ(splits[0].buckets, (std::vector<std::vector<int>>{{1}, {3}}));
}

TEST(PlanSpaceTest, RepeatedSplittingEnumeratesEverything) {
  // Keep splitting around an arbitrary member: the spaces must drain to
  // exactly the full plan set with no duplicates.
  stats::Workload w = MakeWorkload(2, 4);
  PlanSpace full = PlanSpace::FullSpace(w);
  std::set<ConcretePlan> seen;
  std::vector<PlanSpace> stack = {full};
  while (!stack.empty()) {
    PlanSpace space = std::move(stack.back());
    stack.pop_back();
    ConcretePlan pick(space.buckets.size());
    for (size_t b = 0; b < space.buckets.size(); ++b) {
      pick[b] = space.buckets[b][0];
    }
    EXPECT_TRUE(seen.insert(pick).second);
    for (PlanSpace& split : SplitAround(space, pick)) {
      stack.push_back(std::move(split));
    }
  }
  EXPECT_EQ(seen.size(), full.NumPlans());
}

TEST(PlanSpaceDeathTest, SplitAroundForeignPlanAborts) {
  PlanSpace space;
  space.buckets = {{0, 1}};
  EXPECT_DEATH(SplitAround(space, {5}), "not in space");
}

TEST(PlanSpaceTest, ToStringReadable) {
  PlanSpace space;
  space.buckets = {{0, 1}, {2}};
  EXPECT_EQ(space.ToString(), "{[0,1] x [2]}");
}

}  // namespace
}  // namespace planorder::core
