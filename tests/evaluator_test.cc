#include "datalog/evaluator.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace planorder::datalog {
namespace {

Atom MustAtom(std::string_view text) {
  auto atom = ParseAtom(text);
  EXPECT_TRUE(atom.ok()) << atom.status();
  return *atom;
}

ConjunctiveQuery MustRule(std::string_view text) {
  auto rule = ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  return *rule;
}

TEST(DatabaseTest, AddAndContains) {
  Database db;
  EXPECT_TRUE(db.AddFact(MustAtom("r(a,b)")));
  EXPECT_FALSE(db.AddFact(MustAtom("r(a,b)")));  // duplicate
  EXPECT_TRUE(db.AddFact(MustAtom("r(a,c)")));
  EXPECT_EQ(db.size(), 2u);
  EXPECT_TRUE(db.Contains(MustAtom("r(a,b)")));
  EXPECT_FALSE(db.Contains(MustAtom("r(b,a)")));
  EXPECT_EQ(db.TuplesFor("r").size(), 2u);
  EXPECT_TRUE(db.TuplesFor("unknown").empty());
}

TEST(DatabaseDeathTest, NonGroundFactAborts) {
  Database db;
  EXPECT_DEATH(db.AddFact(MustAtom("r(a,X)")), "non-ground");
}

TEST(EvaluateQueryTest, SimpleJoin) {
  Database db;
  db.AddFact(MustAtom("r(a,b)"));
  db.AddFact(MustAtom("r(b,c)"));
  db.AddFact(MustAtom("s(b,x)"));
  db.AddFact(MustAtom("s(c,y)"));
  auto results = EvaluateQuery(MustRule("q(X,Z) :- r(X,Y), s(Y,Z)"), db);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 2u);
}

TEST(EvaluateQueryTest, ConstantsFilter) {
  Database db;
  db.AddFact(MustAtom("play-in(ford, witness)"));
  db.AddFact(MustAtom("play-in(hepburn, sabrina)"));
  db.AddFact(MustAtom("review-of(r1, witness)"));
  db.AddFact(MustAtom("review-of(r2, sabrina)"));
  auto results = EvaluateQuery(
      MustRule("q(M,R) :- play-in(ford,M), review-of(R,M)"), db);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0][0], Term::Constant("witness"));
  EXPECT_EQ((*results)[0][1], Term::Constant("r1"));
}

TEST(EvaluateQueryTest, DeduplicatesProjectedAnswers) {
  Database db;
  db.AddFact(MustAtom("r(a,b)"));
  db.AddFact(MustAtom("r(a,c)"));
  auto results = EvaluateQuery(MustRule("q(X) :- r(X,Y)"), db);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 1u);
}

TEST(EvaluateQueryTest, RepeatedVariableInGoal) {
  Database db;
  db.AddFact(MustAtom("r(a,a)"));
  db.AddFact(MustAtom("r(a,b)"));
  auto results = EvaluateQuery(MustRule("q(X) :- r(X,X)"), db);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0][0], Term::Constant("a"));
}

TEST(EvaluateQueryTest, EmptyWhenNoMatch) {
  Database db;
  db.AddFact(MustAtom("r(a,b)"));
  auto results = EvaluateQuery(MustRule("q(X) :- r(X, z)"), db);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
}

TEST(EvaluateQueryTest, UnsafeQueryRejected) {
  Database db;
  EXPECT_FALSE(EvaluateQuery(MustRule("q(X,Y) :- r(X)"), db).ok());
}

TEST(EvaluateProgramTest, SingleRuleDerivation) {
  Database edb;
  edb.AddFact(MustAtom("parent(a,b)"));
  edb.AddFact(MustAtom("parent(b,c)"));
  auto result = EvaluateProgram(
      {MustRule("grandparent(X,Z) :- parent(X,Y), parent(Y,Z)")}, edb);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Contains(MustAtom("grandparent(a,c)")));
  EXPECT_EQ(result->TuplesFor("grandparent").size(), 1u);
}

TEST(EvaluateProgramTest, RecursiveTransitiveClosure) {
  Database edb;
  edb.AddFact(MustAtom("edge(a,b)"));
  edb.AddFact(MustAtom("edge(b,c)"));
  edb.AddFact(MustAtom("edge(c,d)"));
  auto result = EvaluateProgram(
      {MustRule("path(X,Y) :- edge(X,Y)"),
       MustRule("path(X,Z) :- path(X,Y), edge(Y,Z)")},
      edb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->TuplesFor("path").size(), 6u);
  EXPECT_TRUE(result->Contains(MustAtom("path(a,d)")));
}

TEST(EvaluateProgramTest, SkolemHeadsAllowed) {
  // Inverse-rule shape: derive a fact with a Skolem term in the head.
  Database edb;
  edb.AddFact(MustAtom("v(a)"));
  auto result =
      EvaluateProgram({MustRule("p(X, f_v_Z(X)) :- v(X)")}, edb);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->TuplesFor("p").size(), 1u);
  EXPECT_EQ(result->TuplesFor("p")[0][1].ToString(), "f_v_Z(a)");
}

TEST(EvaluateProgramTest, DivergentSkolemRecursionErrorsOut) {
  // p grows a deeper Skolem term each round: must hit the cap, not hang.
  Database edb;
  edb.AddFact(MustAtom("p(a)"));
  EvaluateOptions options;
  options.max_iterations = 50;
  auto result =
      EvaluateProgram({MustRule("p(f(X)) :- p(X)")}, edb, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(EvaluateProgramTest, UnsafeRuleRejected) {
  Database edb;
  EXPECT_FALSE(EvaluateProgram({MustRule("p(X,Y) :- q(X)")}, edb).ok());
}

TEST(EvaluateQueryTest, BodyOrderDoesNotAffectResults) {
  // EvaluateQuery reorders atoms greedily (bound-first); any permutation of
  // the body must yield the same answer set.
  Database db;
  db.AddFact(MustAtom("r(a,b)"));
  db.AddFact(MustAtom("r(b,c)"));
  db.AddFact(MustAtom("s(b,x)"));
  db.AddFact(MustAtom("s(c,y)"));
  db.AddFact(MustAtom("t(x)"));
  const char* permutations[] = {
      "q(X,Z) :- r(X,Y), s(Y,Z), t(Z)",
      "q(X,Z) :- t(Z), s(Y,Z), r(X,Y)",
      "q(X,Z) :- s(Y,Z), t(Z), r(X,Y)",
  };
  std::set<std::vector<Term>> reference;
  for (const char* text : permutations) {
    auto results = EvaluateQuery(MustRule(text), db);
    ASSERT_TRUE(results.ok()) << text;
    std::set<std::vector<Term>> got(results->begin(), results->end());
    if (reference.empty()) {
      reference = got;
      EXPECT_EQ(reference.size(), 1u);
    } else {
      EXPECT_EQ(got, reference) << text;
    }
  }
}

TEST(EvaluateQueryTest, CartesianBodyStillWorks) {
  // Atoms sharing no variables: a genuine cross product.
  Database db;
  db.AddFact(MustAtom("a(1)"));
  db.AddFact(MustAtom("a(2)"));
  db.AddFact(MustAtom("b(x)"));
  db.AddFact(MustAtom("b(y)"));
  auto results = EvaluateQuery(MustRule("q(X,Y) :- a(X), b(Y)"), db);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 4u);
}

TEST(EvaluateProgramTest, SemiNaiveMatchesNaiveOnDiamond) {
  // Multiple derivation paths for the same fact must not duplicate.
  Database edb;
  edb.AddFact(MustAtom("edge(a,b1)"));
  edb.AddFact(MustAtom("edge(a,b2)"));
  edb.AddFact(MustAtom("edge(b1,c)"));
  edb.AddFact(MustAtom("edge(b2,c)"));
  auto result = EvaluateProgram(
      {MustRule("path(X,Y) :- edge(X,Y)"),
       MustRule("path(X,Z) :- path(X,Y), edge(Y,Z)")},
      edb);
  ASSERT_TRUE(result.ok());
  // paths: a-b1, a-b2, b1-c, b2-c, a-c (deduped).
  EXPECT_EQ(result->TuplesFor("path").size(), 5u);
}

}  // namespace
}  // namespace planorder::datalog
