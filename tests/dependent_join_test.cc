#include "exec/dependent_join.h"

#include <random>
#include <set>

#include <gtest/gtest.h>

#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "exec/source_access.h"

namespace planorder::exec {
namespace {

using datalog::Atom;
using datalog::ConjunctiveQuery;
using datalog::ParseAtom;
using datalog::ParseRule;
using datalog::Term;

Atom MustAtom(std::string_view text) {
  auto atom = ParseAtom(text);
  EXPECT_TRUE(atom.ok()) << atom.status();
  return *atom;
}

ConjunctiveQuery MustRule(std::string_view text) {
  auto rule = ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  return *rule;
}

TEST(AccessibleSourceTest, AddValidatesTuples) {
  AccessibleSource source("v", 2);
  EXPECT_TRUE(source.Add({Term::Constant("a"), Term::Constant("b")}).ok());
  EXPECT_FALSE(source.Add({Term::Constant("a")}).ok());  // arity
  EXPECT_FALSE(
      source.Add({Term::Constant("a"), Term::Variable("X")}).ok());  // ground
  // Duplicate silently kept out.
  EXPECT_TRUE(source.Add({Term::Constant("a"), Term::Constant("b")}).ok());
  EXPECT_EQ(source.size(), 1u);
}

TEST(AccessibleSourceTest, FetchByBindingPattern) {
  AccessibleSource source("v", 2);
  ASSERT_TRUE(source.Add({Term::Constant("ford"), Term::Constant("m1")}).ok());
  ASSERT_TRUE(source.Add({Term::Constant("ford"), Term::Constant("m2")}).ok());
  ASSERT_TRUE(source.Add({Term::Constant("kate"), Term::Constant("m3")}).ok());

  // Full scan.
  EXPECT_EQ(source.Fetch({}).size(), 3u);
  EXPECT_EQ(source.stats().calls, 1);
  EXPECT_EQ(source.stats().tuples_shipped, 3);

  // Point lookup on position 0.
  const auto& ford = source.Fetch({{0, Term::Constant("ford")}});
  EXPECT_EQ(ford.size(), 2u);
  const auto& nobody = source.Fetch({{0, Term::Constant("bogart")}});
  EXPECT_TRUE(nobody.empty());
  EXPECT_EQ(source.stats().calls, 3);
  EXPECT_EQ(source.stats().tuples_shipped, 5);

  // Lookup on both positions.
  EXPECT_EQ(source
                .Fetch({{0, Term::Constant("ford")},
                        {1, Term::Constant("m2")}})
                .size(),
            1u);
}

TEST(AccessibleSourceTest, FetchBatchShipsUnionAsOneCall) {
  AccessibleSource source("v", 2);
  ASSERT_TRUE(source.Add({Term::Constant("ford"), Term::Constant("m1")}).ok());
  ASSERT_TRUE(source.Add({Term::Constant("ford"), Term::Constant("m2")}).ok());
  ASSERT_TRUE(source.Add({Term::Constant("kate"), Term::Constant("m3")}).ok());
  auto rows = source.FetchBatch({{{0, Term::Constant("ford")}},
                                 {{0, Term::Constant("kate")}},
                                 {{0, Term::Constant("ford")}}});
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 3u);  // union, deduplicated
  EXPECT_EQ(source.stats().calls, 1);
  EXPECT_EQ(source.stats().tuples_shipped, 3);
}

TEST(AccessibleSourceTest, FetchBatchRejectsMixedPositionSets) {
  // Regression: the documented precondition ("all combinations must bind the
  // same position set") used to be unchecked — a mixed batch silently
  // consulted different indexes per combination. Now it is a hard error,
  // reported before any accounting is recorded.
  AccessibleSource source("v", 2);
  ASSERT_TRUE(source.Add({Term::Constant("ford"), Term::Constant("m1")}).ok());
  auto mixed = source.FetchBatch({{{0, Term::Constant("ford")}},
                                  {{1, Term::Constant("m1")}}});
  ASSERT_FALSE(mixed.ok());
  EXPECT_EQ(mixed.status().code(), StatusCode::kInvalidArgument);
  // Differing arity of the bound set is rejected too.
  auto ragged = source.FetchBatch(
      {{{0, Term::Constant("ford")}},
       {{0, Term::Constant("ford")}, {1, Term::Constant("m1")}}});
  ASSERT_FALSE(ragged.ok());
  EXPECT_EQ(ragged.status().code(), StatusCode::kInvalidArgument);
  // No call or shipping was recorded for the rejected batches.
  EXPECT_EQ(source.stats().calls, 0);
  EXPECT_EQ(source.stats().tuples_shipped, 0);
  // An empty batch remains a free no-op.
  auto empty = source.FetchBatch({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  EXPECT_EQ(source.stats().calls, 0);
}

TEST(SourceRegistryTest, RegisterAndFind) {
  SourceRegistry registry;
  ASSERT_TRUE(registry.Register("v1", 2).ok());
  EXPECT_FALSE(registry.Register("v1", 2).ok());  // duplicate
  EXPECT_NE(registry.Find("v1"), nullptr);
  EXPECT_EQ(registry.Find("v2"), nullptr);
}

class DependentJoinFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto v1 = registry_.Register("v1", 2);
    auto v4 = registry_.Register("v4", 2);
    ASSERT_TRUE(v1.ok() && v4.ok());
    auto add = [](AccessibleSource* s, const char* a, const char* b) {
      ASSERT_TRUE(s->Add({Term::Constant(a), Term::Constant(b)}).ok());
    };
    // v1(actor, movie)
    add(*v1, "ford", "witness");
    add(*v1, "ford", "sabrina");
    add(*v1, "kate", "titanic");
    // v4(review, movie)
    add(*v4, "r1", "witness");
    add(*v4, "r2", "witness");
    add(*v4, "r3", "titanic");
    add(*v4, "r4", "blade");
  }

  SourceRegistry registry_;
};

TEST_F(DependentJoinFixture, ExecutesBoundJoin) {
  const ConjunctiveQuery plan =
      MustRule("q(M,R) :- v1(ford,M), v4(R,M)");
  ExecutionTrace trace;
  auto answers = ExecutePlanDependent(plan, registry_, &trace);
  ASSERT_TRUE(answers.ok()) << answers.status();
  std::set<std::vector<Term>> got(answers->begin(), answers->end());
  EXPECT_EQ(got.size(), 2u);  // (witness,r1), (witness,r2)

  ASSERT_EQ(trace.atoms.size(), 2u);
  // Atom 0: one call bound on actor=ford, shipping ford's 2 movies.
  EXPECT_EQ(trace.atoms[0].calls, 1);
  EXPECT_EQ(trace.atoms[0].tuples_shipped, 2);
  // Atom 1: ONE batched call shipping the distinct movies (witness,
  // sabrina); the source returns witness's two reviews.
  EXPECT_EQ(trace.atoms[1].calls, 1);
  EXPECT_EQ(trace.atoms[1].tuples_shipped, 2);
}

TEST_F(DependentJoinFixture, MatchesSetOrientedEvaluation) {
  // Dependent execution must return exactly what evaluating the rewriting
  // over a database of all source facts returns.
  const ConjunctiveQuery plan = MustRule("q(A,M,R) :- v1(A,M), v4(R,M)");
  auto dependent = ExecutePlanDependent(plan, registry_);
  ASSERT_TRUE(dependent.ok());

  datalog::Database db;
  db.AddFact(MustAtom("v1(ford, witness)"));
  db.AddFact(MustAtom("v1(ford, sabrina)"));
  db.AddFact(MustAtom("v1(kate, titanic)"));
  db.AddFact(MustAtom("v4(r1, witness)"));
  db.AddFact(MustAtom("v4(r2, witness)"));
  db.AddFact(MustAtom("v4(r3, titanic)"));
  db.AddFact(MustAtom("v4(r4, blade)"));
  auto set_oriented = datalog::EvaluateQuery(plan, db);
  ASSERT_TRUE(set_oriented.ok());

  std::set<std::vector<Term>> a(dependent->begin(), dependent->end());
  std::set<std::vector<Term>> b(set_oriented->begin(), set_oriented->end());
  EXPECT_EQ(a, b);
}

TEST_F(DependentJoinFixture, TraceCostMatchesMeasureTwoShape) {
  // The trace priced with (h, alpha) is exactly the measure-(2) structure:
  // h per call + alpha per shipped tuple.
  const ConjunctiveQuery plan = MustRule("q(M,R) :- v1(ford,M), v4(R,M)");
  ExecutionTrace trace;
  ASSERT_TRUE(ExecutePlanDependent(plan, registry_, &trace).ok());
  // h=5, alpha = {0.5, 0.25}:
  // cost = (1*5 + 2*0.5) + (1*5 + 2*0.25) = 6 + 5.5 = 11.5 — exactly the
  // (h + a_i n_i) + (h + a_j n_out) structure of measure (2).
  EXPECT_DOUBLE_EQ(trace.ModeledCost(5.0, {0.5, 0.25}), 11.5);
  EXPECT_EQ(trace.TotalCalls(), 2);
  EXPECT_EQ(trace.TotalTuplesShipped(), 4);
}

TEST_F(DependentJoinFixture, EmptyPrefixShortCircuits) {
  const ConjunctiveQuery plan =
      MustRule("q(M,R) :- v1(bogart,M), v4(R,M)");
  ExecutionTrace trace;
  auto answers = ExecutePlanDependent(plan, registry_, &trace);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
  ASSERT_EQ(trace.atoms.size(), 2u);
  EXPECT_EQ(trace.atoms[0].calls, 1);
  EXPECT_EQ(trace.atoms[0].tuples_shipped, 0);
  EXPECT_EQ(trace.atoms[1].calls, 0);  // never contacted
}

TEST_F(DependentJoinFixture, ValidatesInputs) {
  // Unknown source.
  EXPECT_FALSE(
      ExecutePlanDependent(MustRule("q(X) :- nope(X, Y)"), registry_).ok());
  // Arity mismatch.
  EXPECT_FALSE(
      ExecutePlanDependent(MustRule("q(X) :- v1(X)"), registry_).ok());
  // Unsafe head.
  EXPECT_FALSE(
      ExecutePlanDependent(MustRule("q(Z) :- v1(X, Y)"), registry_).ok());
}

TEST_F(DependentJoinFixture, RepeatedVariableInAtom) {
  auto vx = registry_.Register("vx", 2);
  ASSERT_TRUE(vx.ok());
  ASSERT_TRUE((*vx)->Add({Term::Constant("a"), Term::Constant("a")}).ok());
  ASSERT_TRUE((*vx)->Add({Term::Constant("a"), Term::Constant("b")}).ok());
  auto answers =
      ExecutePlanDependent(MustRule("q(X) :- vx(X, X)"), registry_);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0][0], Term::Constant("a"));
}

TEST(DependentJoinRandomTest, AgreesWithSetOrientedOnRandomChains) {
  std::mt19937_64 rng(77);
  for (int round = 0; round < 10; ++round) {
    SourceRegistry registry;
    datalog::Database db;
    const int m = 2 + static_cast<int>(rng() % 2);
    for (int b = 0; b < m; ++b) {
      auto source = registry.Register("s" + std::to_string(b), 2);
      ASSERT_TRUE(source.ok());
      const int tuples = 4 + static_cast<int>(rng() % 8);
      for (int t = 0; t < tuples; ++t) {
        Term x = Term::Constant("c" + std::to_string(rng() % 5));
        Term y = Term::Constant("c" + std::to_string(rng() % 5));
        ASSERT_TRUE((*source)->Add({x, y}).ok());
        db.AddFact(Atom("s" + std::to_string(b), {x, y}));
      }
    }
    ConjunctiveQuery plan;
    plan.head.predicate = "q";
    plan.head.args = {Term::Variable("X0"),
                      Term::Variable("X" + std::to_string(m))};
    for (int b = 0; b < m; ++b) {
      plan.body.push_back(
          Atom("s" + std::to_string(b),
               {Term::Variable("X" + std::to_string(b)),
                Term::Variable("X" + std::to_string(b + 1))}));
    }
    auto dependent = ExecutePlanDependent(plan, registry);
    auto set_oriented = datalog::EvaluateQuery(plan, db);
    ASSERT_TRUE(dependent.ok() && set_oriented.ok());
    std::set<std::vector<Term>> a(dependent->begin(), dependent->end());
    std::set<std::vector<Term>> b2(set_oriented->begin(), set_oriented->end());
    EXPECT_EQ(a, b2) << "round " << round;
  }
}

}  // namespace
}  // namespace planorder::exec
