// Tests of service metrics aggregation across shards: exact percentile
// merging of raw latency histograms (the reason ShardedService pools samples
// instead of averaging per-shard percentiles) and the counter-wise
// ServiceMetricsSnapshot::Merge.

#include "service/metrics.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace planorder::service {
namespace {

TEST(LatencyHistogramMergeTest, NonOverlappingHistogramsMergeExactly) {
  // Two shards with disjoint latency ranges: shard A saw 1..50 ms, shard B
  // saw 101..150 ms. Per-shard percentiles are useless for the cluster (any
  // average of A's p99 and B's p99 is wrong); merging the raw samples must
  // reproduce the percentiles of one histogram that recorded all 100.
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram all;
  for (int i = 1; i <= 50; ++i) {
    a.Record(double(i));
    all.Record(double(i));
  }
  for (int i = 101; i <= 150; ++i) {
    b.Record(double(i));
    all.Record(double(i));
  }

  LatencyHistogram merged;
  merged.Merge(a);
  merged.Merge(b);

  EXPECT_EQ(merged.count(), 100u);
  EXPECT_DOUBLE_EQ(merged.total_ms(), all.total_ms());
  EXPECT_DOUBLE_EQ(merged.max_ms(), 150.0);
  for (double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(merged.Percentile(p), all.Percentile(p))
        << "percentile " << p;
  }
  // The cluster p50 sits at the top of shard A's range, nowhere near the
  // mean of the per-shard medians (25.5 + 125.5)/2 — the exact value only
  // falls out of the pooled samples.
  EXPECT_DOUBLE_EQ(merged.Percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(merged.Percentile(99.0), 149.0);
}

TEST(LatencyHistogramMergeTest, MergeLeavesSourceUntouched) {
  LatencyHistogram a;
  a.Record(1.0);
  LatencyHistogram merged;
  merged.Merge(a);
  merged.Record(2.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.max_ms(), 1.0);
  EXPECT_EQ(merged.count(), 2u);
}

TEST(LatencyHistogramMergeTest, MergeSafeAgainstConcurrentRecords) {
  LatencyHistogram shard;
  LatencyHistogram merged;
  std::thread writer([&shard] {
    for (int i = 0; i < 2000; ++i) shard.Record(double(i));
  });
  // Concurrent merges must see some prefix of the writer's samples without
  // tearing (the snapshot-then-fold protocol).
  for (int i = 0; i < 10; ++i) {
    LatencyHistogram scratch;
    scratch.Merge(shard);
    EXPECT_LE(scratch.count(), 2000u);
  }
  writer.join();
  merged.Merge(shard);
  EXPECT_EQ(merged.count(), 2000u);
}

TEST(ServiceMetricsSnapshotMergeTest, CountersSumPeaksMax) {
  ServiceMetricsSnapshot a;
  a.sessions_admitted = 10;
  a.sessions_completed = 8;
  a.sessions_shed = 2;
  a.queue_depth = 1;
  a.queue_depth_peak = 5;
  a.cache.hits = 3;
  a.cache.misses = 4;
  a.total_answers = 100;
  a.runtime.source_cache_hits = 7;

  ServiceMetricsSnapshot b;
  b.sessions_admitted = 5;
  b.sessions_completed = 5;
  b.queue_depth = 2;
  b.queue_depth_peak = 3;
  b.cache.hits = 1;
  b.total_answers = 50;
  b.runtime.source_cache_hits = 2;

  a.Merge(b);
  EXPECT_EQ(a.sessions_admitted, 15);
  EXPECT_EQ(a.sessions_completed, 13);
  EXPECT_EQ(a.sessions_shed, 2);
  EXPECT_EQ(a.queue_depth, 3);        // depths sum (cluster-wide backlog)
  EXPECT_EQ(a.queue_depth_peak, 5);   // peaks max (no cross-shard moment)
  EXPECT_EQ(a.cache.hits, 4);
  EXPECT_EQ(a.cache.misses, 4);
  EXPECT_EQ(a.total_answers, 150);
  EXPECT_EQ(a.runtime.source_cache_hits, 9);
}

}  // namespace
}  // namespace planorder::service
