/// Unit tests of the any-k enumerator: non-increasing emission, agreement
/// with the brute-force oracle on hand-built and randomized facts, the
/// semi-join pruning, and the error contract on cyclic / comparison queries.

#include "anyk/executor.h"

#include <map>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "anyk/brute_force.h"
#include "anyk/weights.h"
#include "datalog/parser.h"
#include "test_util.h"

namespace planorder::anyk {
namespace {

datalog::Atom MustParseAtom(const std::string& text) {
  auto atom = datalog::ParseAtom(text);
  EXPECT_TRUE(atom.ok()) << atom.status();
  return *atom;
}

datalog::ConjunctiveQuery MustParseRule(const std::string& text) {
  auto rule = datalog::ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  return *rule;
}

/// Drains the enumerator, checking the weights never increase, and folds the
/// witnesses into answer -> best weight (first occurrence wins, which the
/// emission contract says is the best).
std::map<std::vector<datalog::Term>, double> DrainToBestWeights(
    AnyKEnumerator& enumerator) {
  std::map<std::vector<datalog::Term>, double> best;
  double previous = std::numeric_limits<double>::infinity();
  while (true) {
    auto next = enumerator.Next();
    if (!next.ok()) {
      EXPECT_EQ(next.status().code(), StatusCode::kNotFound) << next.status();
      break;
    }
    EXPECT_LE(next->weight, previous) << "emission weight increased";
    previous = next->weight;
    best.emplace(next->tuple, next->weight);  // first occurrence only
  }
  return best;
}

std::map<std::vector<datalog::Term>, double> ToBestWeights(
    const std::vector<RankedAnswer>& answers) {
  std::map<std::vector<datalog::Term>, double> best;
  for (const RankedAnswer& answer : answers) {
    best.emplace(answer.tuple, answer.weight);
  }
  return best;
}

TEST(AnyKExecutorTest, ChainJoinMatchesBruteForce) {
  datalog::Database facts;
  for (const char* text : {"p(a,b)", "p(a,c)", "p(d,b)", "r(b,x)", "r(b,y)",
                           "r(c,x)", "r(z,z)"}) {
    facts.AddFact(MustParseAtom(text));
  }
  const auto query = MustParseRule("q(A,C) :- p(A,B), r(B,C)");
  for (Aggregation aggregation : {Aggregation::kSum, Aggregation::kMax}) {
    WeightOptions options;
    options.seed = 7;
    options.aggregation = aggregation;
    auto enumerator = AnyKEnumerator::Create(query, facts, options);
    ASSERT_TRUE(enumerator.ok()) << enumerator.status();
    auto oracle = BruteForceRankedAnswers(query, facts, options);
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    EXPECT_EQ(DrainToBestWeights(**enumerator), ToBestWeights(*oracle))
        << AggregationName(aggregation);
  }
}

TEST(AnyKExecutorTest, ConstantsAndRepeatedVariablesFilterRows) {
  datalog::Database facts;
  for (const char* text :
       {"p(a,a)", "p(a,b)", "p(b,b)", "r(a,k)", "r(b,k)", "r(b,m)"}) {
    facts.AddFact(MustParseAtom(text));
  }
  // Only rows with X = X survive the self-join filter, and r is pinned to
  // the constant k.
  const auto query = MustParseRule("q(X,C) :- p(X,X), r(X,C)");
  WeightOptions options;
  auto enumerator = AnyKEnumerator::Create(query, facts, options);
  ASSERT_TRUE(enumerator.ok()) << enumerator.status();
  auto oracle = BruteForceRankedAnswers(query, facts, options);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  const auto best = DrainToBestWeights(**enumerator);
  EXPECT_EQ(best, ToBestWeights(*oracle));
  EXPECT_EQ(best.size(), 3u);  // (a,k), (b,k), (b,m)
}

TEST(AnyKExecutorTest, EmptyJoinExhaustsImmediately) {
  datalog::Database facts;
  facts.AddFact(MustParseAtom("p(a,b)"));
  facts.AddFact(MustParseAtom("r(c,d)"));  // no join partner for b
  const auto query = MustParseRule("q(A,C) :- p(A,B), r(B,C)");
  WeightOptions options;
  auto enumerator = AnyKEnumerator::Create(query, facts, options);
  ASSERT_TRUE(enumerator.ok()) << enumerator.status();
  EXPECT_EQ((*enumerator)->Peek(), nullptr);
  auto next = (*enumerator)->Next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kNotFound);
}

TEST(AnyKExecutorTest, PeekIsStableAndMatchesNext) {
  datalog::Database facts;
  for (const char* text : {"p(a,b)", "p(c,b)", "r(b,x)", "r(b,y)"}) {
    facts.AddFact(MustParseAtom(text));
  }
  const auto query = MustParseRule("q(A,C) :- p(A,B), r(B,C)");
  WeightOptions options;
  auto enumerator = AnyKEnumerator::Create(query, facts, options);
  ASSERT_TRUE(enumerator.ok()) << enumerator.status();
  while (true) {
    const RankedAnswer* peeked = (*enumerator)->Peek();
    if (peeked == nullptr) break;
    const RankedAnswer copy = *peeked;
    EXPECT_EQ(*(*enumerator)->Peek(), copy);  // repeated peek: same answer
    auto next = (*enumerator)->Next();
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(*next, copy);
  }
  EXPECT_EQ((*enumerator)->witnesses_emitted(), 4u);  // 2 x 2 witnesses
}

TEST(AnyKExecutorTest, CyclicQueryIsRejected) {
  datalog::Database facts;
  const auto query = MustParseRule("q(A) :- p(A,B), r(B,C), s(C,A)");
  WeightOptions options;
  auto enumerator = AnyKEnumerator::Create(query, facts, options);
  ASSERT_FALSE(enumerator.ok());
  EXPECT_EQ(enumerator.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AnyKExecutorTest, ComparisonAtomsAreUnimplemented) {
  datalog::Database facts;
  const auto query = MustParseRule("q(A,B) :- p(A,B), lt(A,B)");
  WeightOptions options;
  auto enumerator = AnyKEnumerator::Create(query, facts, options);
  ASSERT_FALSE(enumerator.ok());
  EXPECT_EQ(enumerator.status().code(), StatusCode::kUnimplemented);
}

TEST(AnyKExecutorTest, RandomizedStarJoinsMatchBruteForce) {
  // Star query q(A,B,C) :- e(H,A), f(H,B), g(H,C) over random small domains:
  // every draw must agree with the oracle under both aggregations.
  const auto query = MustParseRule("q(A,B,C) :- e(H,A), f(H,B), g(H,C)");
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    test::SeededScenario scenario("anyk_executor_test", seed);
    std::mt19937_64& rng = scenario.rng();
    datalog::Database facts;
    const char* predicates[] = {"e", "f", "g"};
    for (const char* predicate : predicates) {
      const int tuples = 3 + int(rng() % 12);
      for (int t = 0; t < tuples; ++t) {
        facts.AddFact(MustParseAtom(
            std::string(predicate) + "(h" + std::to_string(rng() % 4) +
            ",v" + std::to_string(rng() % 6) + ")"));
      }
    }
    for (Aggregation aggregation : {Aggregation::kSum, Aggregation::kMax}) {
      WeightOptions options;
      options.seed = seed * 31;
      options.aggregation = aggregation;
      auto enumerator = AnyKEnumerator::Create(query, facts, options);
      ASSERT_TRUE(enumerator.ok()) << enumerator.status();
      auto oracle = BruteForceRankedAnswers(query, facts, options);
      ASSERT_TRUE(oracle.ok()) << oracle.status();
      EXPECT_EQ(DrainToBestWeights(**enumerator), ToBestWeights(*oracle))
          << AggregationName(aggregation);
    }
  }
}

TEST(AnyKExecutorTest, PowerOfTwoScaleIsExact) {
  datalog::Database facts;
  for (const char* text : {"p(a,b)", "p(c,b)", "r(b,x)", "r(b,y)"}) {
    facts.AddFact(MustParseAtom(text));
  }
  const auto query = MustParseRule("q(A,C) :- p(A,B), r(B,C)");
  WeightOptions options;
  auto base = AnyKEnumerator::Create(query, facts, options);
  ASSERT_TRUE(base.ok());
  WeightOptions scaled_options = options;
  scaled_options.scale = 8.0;
  auto scaled = AnyKEnumerator::Create(query, facts, scaled_options);
  ASSERT_TRUE(scaled.ok());
  while (true) {
    auto a = (*base)->Next();
    auto b = (*scaled)->Next();
    ASSERT_EQ(a.ok(), b.ok());
    if (!a.ok()) break;
    EXPECT_EQ(a->tuple, b->tuple);
    EXPECT_EQ(a->weight * 8.0, b->weight);  // bit-exact, not approximate
  }
}

}  // namespace
}  // namespace planorder::anyk
