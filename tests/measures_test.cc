#include "utility/measures.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace planorder::utility {
namespace {

stats::Workload VaryingAlphaWorkload() {
  return test::MakeWorkload(3, 5, 0.3, 9);
}

TEST(MeasureKindNameTest, NamesAreStableAndDistinct) {
  std::set<std::string> names;
  for (MeasureKind kind :
       {MeasureKind::kAdditive, MeasureKind::kCost2UniformAlpha,
        MeasureKind::kCost2, MeasureKind::kFailureNoCache,
        MeasureKind::kFailureCache, MeasureKind::kMonetary,
        MeasureKind::kMonetaryCache, MeasureKind::kCoverage}) {
    EXPECT_TRUE(names.insert(MeasureKindName(kind)).second);
  }
  EXPECT_EQ(MeasureKindName(MeasureKind::kCoverage), "coverage");
  EXPECT_EQ(MeasureKindName(MeasureKind::kFailureCache), "failure-cache");
}

TEST(MakeMeasureTest, PropertyMatrixMatchesThePaper) {
  stats::Workload w = VaryingAlphaWorkload();
  struct Expectation {
    MeasureKind kind;
    bool monotonic;
    bool diminishing;
    bool independent;
  };
  // Section 3 / Section 6 applicability matrix.
  const Expectation expectations[] = {
      {MeasureKind::kAdditive, true, true, true},
      {MeasureKind::kCost2, false, true, true},
      {MeasureKind::kFailureNoCache, false, true, true},
      {MeasureKind::kFailureCache, false, false, false},
      {MeasureKind::kMonetary, false, true, true},
      {MeasureKind::kMonetaryCache, false, false, false},
      {MeasureKind::kCoverage, false, true, false},
  };
  for (const Expectation& e : expectations) {
    auto model = MakeMeasure(e.kind, &w);
    ASSERT_TRUE(model.ok()) << MeasureKindName(e.kind);
    EXPECT_EQ((*model)->fully_monotonic(), e.monotonic)
        << MeasureKindName(e.kind);
    EXPECT_EQ((*model)->diminishing_returns(), e.diminishing)
        << MeasureKindName(e.kind);
    EXPECT_EQ((*model)->fully_independent(), e.independent)
        << MeasureKindName(e.kind);
  }
}

TEST(MakeMeasureTest, UniformAlphaRequiresUniformWorkload) {
  stats::Workload varying = VaryingAlphaWorkload();
  EXPECT_FALSE(MakeMeasure(MeasureKind::kCost2UniformAlpha, &varying).ok());

  stats::WorkloadOptions options;
  options.query_length = 2;
  options.bucket_size = 3;
  options.alpha_min = 0.4;
  options.alpha_max = 0.4;
  options.seed = 10;
  auto uniform = stats::Workload::Generate(options);
  ASSERT_TRUE(uniform.ok());
  auto model = MakeMeasure(MeasureKind::kCost2UniformAlpha, &*uniform);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE((*model)->fully_monotonic());
}

TEST(ExecutionContextTest, TracksExecutionState) {
  stats::Workload w = test::MakeWorkload(2, 3, 0.4, 11);
  ExecutionContext ctx(&w);
  EXPECT_EQ(ctx.epoch(), 0);
  EXPECT_FALSE(ctx.IsCached(0, 1));

  ctx.MarkExecuted({1, 2});
  EXPECT_EQ(ctx.epoch(), 1);
  EXPECT_TRUE(ctx.IsCached(0, 1));
  EXPECT_TRUE(ctx.IsCached(1, 2));
  EXPECT_FALSE(ctx.IsCached(0, 0));
  ASSERT_EQ(ctx.executed().size(), 1u);
  EXPECT_EQ(ctx.executed()[0], (ConcretePlan{1, 2}));

  // The executed plan's coverage box is covered.
  std::vector<stats::RegionMask> box = {w.source(0, 1).regions,
                                        w.source(1, 2).regions};
  EXPECT_DOUBLE_EQ(ctx.universe().UncoveredBoxVolume(box), 0.0);

  ctx.Reset();
  EXPECT_EQ(ctx.epoch(), 0);
  EXPECT_FALSE(ctx.IsCached(0, 1));
  EXPECT_GT(ctx.universe().UncoveredBoxVolume(box), 0.0);
}

TEST(ExecutionContextTest, CachingAccumulatesAcrossPlans) {
  stats::Workload w = test::MakeWorkload(2, 3, 0.4, 12);
  ExecutionContext ctx(&w);
  ctx.MarkExecuted({0, 0});
  ctx.MarkExecuted({1, 0});
  EXPECT_TRUE(ctx.IsCached(0, 0));
  EXPECT_TRUE(ctx.IsCached(0, 1));
  EXPECT_TRUE(ctx.IsCached(1, 0));
  EXPECT_FALSE(ctx.IsCached(1, 1));
}

TEST(ProbeMemberTest, CoveragePicksHeaviestMask) {
  std::vector<std::vector<stats::SourceStats>> buckets(1);
  stats::SourceStats small, big;
  small.regions.bits = 0b0001;
  big.regions.bits = 0b0111;
  buckets[0] = {small, big};
  auto w = stats::Workload::FromParts(
      buckets, {std::vector<double>(4, 0.25)}, 1.0, {10.0});
  ASSERT_TRUE(w.ok());
  CoverageModel model(&*w);
  stats::StatSummary group = stats::StatSummary::Merge(w->summary(0, 0),
                                                       w->summary(0, 1));
  EXPECT_EQ(model.ProbeMember(group), 1);  // big covers 3x the weight
}

TEST(ProbeMemberTest, CostPicksCheapest) {
  std::vector<std::vector<stats::SourceStats>> buckets(1);
  stats::SourceStats pricey, cheap;
  pricey.cardinality = 100;
  pricey.transmission_cost = 1.0;
  pricey.regions.bits = 1;
  cheap.cardinality = 10;
  cheap.transmission_cost = 0.1;
  cheap.regions.bits = 1;
  buckets[0] = {pricey, cheap};
  auto w = stats::Workload::FromParts(buckets, {{1.0}}, 1.0, {10.0});
  ASSERT_TRUE(w.ok());
  auto model = BoundJoinCostModel::Create(&*w, BoundJoinOptions{});
  ASSERT_TRUE(model.ok());
  stats::StatSummary group = stats::StatSummary::Merge(w->summary(0, 0),
                                                       w->summary(0, 1));
  EXPECT_EQ((*model)->ProbeMember(group), 1);
}

TEST(FindIndependentGroupPlanTest, DefaultEnumerationIsSound) {
  // Exercise the base-class fallback through a model that does not override
  // it; the returned witness must actually be independent of the others.
  stats::Workload w = test::MakeWorkload(2, 4, 0.5, 13);
  CoverageModel model(&w);
  const stats::StatSummary* nodes[] = {&w.summary(0, 0), &w.summary(1, 0)};
  ConcretePlan other = {0, 0};
  std::vector<const ConcretePlan*> others = {&other};
  auto witness = model.FindIndependentGroupPlan(
      NodeSpan(nodes, 2), others);
  if (witness.has_value()) {
    EXPECT_TRUE(model.Independent(*witness, other));
  } else {
    // Singleton group vs itself: correctly reports no independent member.
    EXPECT_FALSE(model.Independent({0, 0}, other));
  }
}

}  // namespace
}  // namespace planorder::utility
