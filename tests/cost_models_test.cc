#include "utility/cost_models.h"

#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "core/abstraction.h"
#include "core/plan_space.h"

namespace planorder::utility {
namespace {

using core::AbstractionForest;
using core::AbstractionHeuristic;
using core::AbstractPlan;
using core::PlanSpace;

stats::Workload MakeWorkload(uint64_t seed, double alpha_min = 0.05,
                             double alpha_max = 1.0) {
  stats::WorkloadOptions options;
  options.query_length = 3;
  options.bucket_size = 6;
  options.regions_per_bucket = 12;
  options.seed = seed;
  options.alpha_min = alpha_min;
  options.alpha_max = alpha_max;
  auto w = stats::Workload::Generate(options);
  EXPECT_TRUE(w.ok()) << w.status();
  return std::move(*w);
}

TEST(AdditiveCostModelTest, MatchesHandComputedCost) {
  std::vector<std::vector<stats::SourceStats>> buckets(2);
  stats::SourceStats a;
  a.cardinality = 10;
  a.transmission_cost = 0.5;
  a.regions.bits = 1;
  stats::SourceStats b;
  b.cardinality = 20;
  b.transmission_cost = 0.25;
  b.regions.bits = 1;
  buckets[0] = {a};
  buckets[1] = {b};
  auto w = stats::Workload::FromParts(buckets, {{1.0}, {1.0}}, 2.0,
                                      {100.0, 100.0});
  ASSERT_TRUE(w.ok());
  AdditiveCostModel model(&*w);
  ExecutionContext ctx(&*w);
  // cost = (2 + 0.5*10) + (2 + 0.25*20) = 7 + 7 = 14; utility = -14.
  EXPECT_DOUBLE_EQ(model.EvaluateConcrete({0, 0}, ctx), -14.0);
}

TEST(AdditiveCostModelTest, Properties) {
  stats::Workload w = MakeWorkload(3);
  AdditiveCostModel model(&w);
  EXPECT_TRUE(model.fully_monotonic());
  EXPECT_TRUE(model.diminishing_returns());
  EXPECT_TRUE(model.Independent({0, 0, 0}, {0, 0, 0}));
  // Monotone score orders by alpha * n ascending.
  const double score0 = model.MonotoneScore(0, 0);
  const stats::SourceStats& s = w.source(0, 0);
  EXPECT_DOUBLE_EQ(score0, -(s.transmission_cost * s.cardinality));
}

TEST(AdditiveCostModelTest, UtilityUnaffectedByExecutions) {
  stats::Workload w = MakeWorkload(4);
  AdditiveCostModel model(&w);
  ExecutionContext ctx(&w);
  const double before = model.EvaluateConcrete({1, 2, 3}, ctx);
  ctx.MarkExecuted({1, 2, 3});
  ctx.MarkExecuted({0, 0, 0});
  EXPECT_DOUBLE_EQ(model.EvaluateConcrete({1, 2, 3}, ctx), before);
}

TEST(BoundJoinCostModelTest, MatchesPaperFormulaTwoBuckets) {
  // cost(ViVj) = (h + a_i n_i) + (h + a_j * (n_j * n_i / N)), measure (2).
  std::vector<std::vector<stats::SourceStats>> buckets(2);
  stats::SourceStats vi;
  vi.cardinality = 40;
  vi.transmission_cost = 0.5;
  vi.regions.bits = 1;
  stats::SourceStats vj;
  vj.cardinality = 100;
  vj.transmission_cost = 0.2;
  vj.regions.bits = 1;
  buckets[0] = {vi};
  buckets[1] = {vj};
  auto w =
      stats::Workload::FromParts(buckets, {{1.0}, {1.0}}, 5.0, {200.0, 200.0});
  ASSERT_TRUE(w.ok());
  auto model = BoundJoinCostModel::Create(&*w, BoundJoinOptions{});
  ASSERT_TRUE(model.ok());
  ExecutionContext ctx(&*w);
  // term0 = 5 + 0.5*40 = 25; transfer1 = 100*40/200 = 20;
  // term1 = 5 + 0.2*20 = 9; total 34.
  EXPECT_DOUBLE_EQ((*model)->EvaluateConcrete({0, 0}, ctx), -34.0);
}

TEST(BoundJoinCostModelTest, FailureDividesTermsByOneMinusF) {
  std::vector<std::vector<stats::SourceStats>> buckets(1);
  stats::SourceStats s;
  s.cardinality = 10;
  s.transmission_cost = 1.0;
  s.failure_prob = 0.5;
  s.regions.bits = 1;
  buckets[0] = {s};
  auto w = stats::Workload::FromParts(buckets, {{1.0}}, 5.0, {100.0});
  ASSERT_TRUE(w.ok());
  BoundJoinOptions options;
  options.include_failure = true;
  auto model = BoundJoinCostModel::Create(&*w, options);
  ASSERT_TRUE(model.ok());
  ExecutionContext ctx(&*w);
  // (5 + 10) / (1 - 0.5) = 30.
  EXPECT_DOUBLE_EQ((*model)->EvaluateConcrete({0}, ctx), -30.0);
}

TEST(BoundJoinCostModelTest, CachingZeroesExecutedOperations) {
  stats::Workload w = MakeWorkload(5);
  BoundJoinOptions options;
  options.use_cache = true;
  auto model = BoundJoinCostModel::Create(&w, options);
  ASSERT_TRUE(model.ok());
  ExecutionContext ctx(&w);
  const double before = (*model)->EvaluateConcrete({1, 2, 3}, ctx);
  ctx.MarkExecuted({1, 2, 3});
  // Everything cached: the whole plan is free now.
  EXPECT_DOUBLE_EQ((*model)->EvaluateConcrete({1, 2, 3}, ctx), 0.0);
  // A plan sharing only bucket 0's op gets cheaper but not free.
  const double partial_before = before;
  (void)partial_before;
  ctx.Reset();
  const double other_before = (*model)->EvaluateConcrete({1, 0, 0}, ctx);
  ctx.MarkExecuted({1, 2, 3});
  const double other_after = (*model)->EvaluateConcrete({1, 0, 0}, ctx);
  EXPECT_GT(other_after, other_before);  // cheaper = higher utility
  EXPECT_LT(other_after, 0.0);
}

TEST(BoundJoinCostModelTest, CachingBreaksDiminishingReturnsFlag) {
  stats::Workload w = MakeWorkload(6);
  BoundJoinOptions options;
  options.use_cache = true;
  auto model = BoundJoinCostModel::Create(&w, options);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE((*model)->diminishing_returns());
  EXPECT_FALSE((*model)->Independent({0, 1, 2}, {0, 3, 4}));  // share (0,0)
  EXPECT_TRUE((*model)->Independent({0, 1, 2}, {1, 2, 3}));
}

TEST(BoundJoinCostModelTest, UniformAlphaValidation) {
  stats::Workload varying = MakeWorkload(7, 0.05, 1.0);
  BoundJoinOptions options;
  options.assume_uniform_alpha = true;
  EXPECT_FALSE(BoundJoinCostModel::Create(&varying, options).ok());

  stats::Workload uniform = MakeWorkload(7, 0.3, 0.3);
  auto model = BoundJoinCostModel::Create(&uniform, options);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_TRUE((*model)->fully_monotonic());
  // Smaller cardinality scores higher.
  EXPECT_GT((*model)->MonotoneScore(0, 0) + uniform.source(0, 0).cardinality,
            -1e-9);
}

TEST(MonetaryModelTest, DividesByOutputTuples) {
  std::vector<std::vector<stats::SourceStats>> buckets(2);
  stats::SourceStats vi;
  vi.cardinality = 40;
  vi.fee = 0.5;
  vi.regions.bits = 1;
  stats::SourceStats vj;
  vj.cardinality = 100;
  vj.fee = 0.2;
  vj.regions.bits = 1;
  buckets[0] = {vi};
  buckets[1] = {vj};
  auto w =
      stats::Workload::FromParts(buckets, {{1.0}, {1.0}}, 5.0, {200.0, 200.0});
  ASSERT_TRUE(w.ok());
  BoundJoinOptions options;
  options.per_tuple_monetary = true;
  auto model = BoundJoinCostModel::Create(&*w, options);
  ASSERT_TRUE(model.ok());
  ExecutionContext ctx(&*w);
  // cost = (5+0.5*40) + (5+0.2*20) = 34; output tuples = 20; 34/20 = 1.7.
  EXPECT_DOUBLE_EQ((*model)->EvaluateConcrete({0, 0}, ctx), -1.7);
}

TEST(ModelNamesTest, DescribeOptions) {
  stats::Workload w = MakeWorkload(8);
  AdditiveCostModel additive(&w);
  EXPECT_EQ(additive.name(), "additive-cost");
  BoundJoinOptions options;
  options.include_failure = true;
  options.use_cache = true;
  auto model = BoundJoinCostModel::Create(&w, options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->name(), "bound-join-cost+failure+cache");
  options.per_tuple_monetary = true;
  auto monetary = BoundJoinCostModel::Create(&w, options);
  ASSERT_TRUE(monetary.ok());
  EXPECT_EQ((*monetary)->name(), "monetary-per-tuple+failure+cache");
}

/// The contract abstract evaluation must satisfy (Section 5.1): the interval
/// of an abstract plan contains the exact utility of every concrete plan it
/// represents, whatever has been executed.
class CostEnclosureTest : public ::testing::TestWithParam<int> {};

TEST_P(CostEnclosureTest, AbstractIntervalsEncloseAllMembers) {
  stats::Workload w = MakeWorkload(GetParam());
  std::vector<std::unique_ptr<UtilityModel>> models;
  models.push_back(std::make_unique<AdditiveCostModel>(&w));
  for (bool failure : {false, true}) {
    for (bool cache : {false, true}) {
      for (bool monetary : {false, true}) {
        BoundJoinOptions options;
        options.include_failure = failure;
        options.use_cache = cache;
        options.per_tuple_monetary = monetary;
        auto model = BoundJoinCostModel::Create(&w, options);
        ASSERT_TRUE(model.ok());
        models.push_back(std::move(*model));
      }
    }
  }

  const PlanSpace space = PlanSpace::FullSpace(w);
  const AbstractionForest forest = AbstractionForest::Build(
      w, space, AbstractionHeuristic::kByCardinality);
  std::mt19937_64 rng(GetParam() * 1000 + 7);

  for (const auto& model : models) {
    ExecutionContext ctx(&w);
    for (int round = 0; round < 4; ++round) {
      // Random abstract plan: walk down each tree a random depth.
      AbstractPlan plan;
      plan.forest = &forest;
      plan.nodes.resize(w.num_buckets());
      for (int b = 0; b < w.num_buckets(); ++b) {
        int node = forest.root(b);
        while (!forest.is_leaf(node) && (rng() & 1)) {
          node = (rng() & 1) ? forest.left(node) : forest.right(node);
        }
        plan.nodes[b] = node;
      }
      const auto summaries = plan.Summaries();
      const Interval interval =
          model->Evaluate(NodeSpan(summaries.data(), summaries.size()), ctx);
      // Every concrete member combination must fall inside.
      std::vector<size_t> cursor(plan.nodes.size(), 0);
      while (true) {
        ConcretePlan concrete(plan.nodes.size());
        for (size_t b = 0; b < plan.nodes.size(); ++b) {
          concrete[b] = forest.summary(plan.nodes[b]).members[cursor[b]];
        }
        const double u = model->EvaluateConcrete(concrete, ctx);
        EXPECT_GE(u, interval.lo() - 1e-9)
            << model->name() << " round " << round;
        EXPECT_LE(u, interval.hi() + 1e-9)
            << model->name() << " round " << round;
        size_t b = 0;
        for (; b < plan.nodes.size(); ++b) {
          if (++cursor[b] < forest.summary(plan.nodes[b]).members.size()) {
            break;
          }
          cursor[b] = 0;
        }
        if (b == plan.nodes.size()) break;
      }
      // Execute a random plan and re-check conditioning next round.
      ConcretePlan executed(w.num_buckets());
      for (int b = 0; b < w.num_buckets(); ++b) {
        executed[b] = static_cast<int>(rng() % w.bucket_size(b));
      }
      ctx.MarkExecuted(executed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostEnclosureTest,
                         ::testing::Values(11, 12, 13, 14));

}  // namespace
}  // namespace planorder::utility
