/// Interpreted comparison predicates (lt/le/gt/ge/neq) across the stack:
/// builtin evaluation, safety, query evaluation, containment by constraint
/// implication, the bucket-algorithm pipeline (plans over sources whose view
/// constraints contradict the query are filtered as unsound), inverse rules,
/// and dependent-join execution.

#include <set>

#include <gtest/gtest.h>

#include "datalog/builtins.h"
#include "datalog/containment.h"
#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "exec/dependent_join.h"
#include "reformulation/inverse_rules.h"
#include "reformulation/minicon.h"
#include "reformulation/rewriting.h"

namespace planorder {
namespace {

using datalog::Atom;
using datalog::ConjunctiveQuery;
using datalog::ParseAtom;
using datalog::ParseRule;
using datalog::Term;

Atom MustAtom(std::string_view text) {
  auto atom = ParseAtom(text);
  EXPECT_TRUE(atom.ok()) << atom.status();
  return *atom;
}

ConjunctiveQuery MustRule(std::string_view text) {
  auto rule = ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  return *rule;
}

TEST(BuiltinsTest, RecognizesComparisonAtoms) {
  EXPECT_TRUE(datalog::IsComparisonAtom(MustAtom("lt(X, 5)")));
  EXPECT_TRUE(datalog::IsComparisonAtom(MustAtom("neq(A, B)")));
  EXPECT_FALSE(datalog::IsComparisonAtom(MustAtom("lt(X, 5, 6)")));  // arity
  EXPECT_FALSE(datalog::IsComparisonAtom(MustAtom("less(X, 5)")));
}

TEST(BuiltinsTest, NumericValues) {
  EXPECT_EQ(datalog::NumericValue(Term::Constant("42")), 42.0);
  EXPECT_EQ(datalog::NumericValue(Term::Constant("-3.5")), -3.5);
  EXPECT_FALSE(datalog::NumericValue(Term::Constant("ford")).has_value());
  EXPECT_FALSE(datalog::NumericValue(Term::Variable("X")).has_value());
  EXPECT_FALSE(datalog::NumericValue(Term::Constant("12abc")).has_value());
}

TEST(BuiltinsTest, EvaluatesAllOperators) {
  auto eval = [&](const char* text) {
    auto result = datalog::EvaluateComparison(MustAtom(text));
    EXPECT_TRUE(result.ok()) << text;
    return result.ok() && *result;
  };
  EXPECT_TRUE(eval("lt(1, 2)"));
  EXPECT_FALSE(eval("lt(2, 2)"));
  EXPECT_TRUE(eval("le(2, 2)"));
  EXPECT_TRUE(eval("gt(3, 2)"));
  EXPECT_TRUE(eval("ge(2, 2)"));
  EXPECT_TRUE(eval("neq(1, 2)"));
  EXPECT_FALSE(eval("neq(2, 2)"));
  EXPECT_FALSE(datalog::EvaluateComparison(MustAtom("lt(ford, 2)")).ok());
}

TEST(ComparisonSafetyTest, ComparisonVariablesMustBeRelationallyBound) {
  EXPECT_TRUE(MustRule("q(X) :- r(X), lt(X, 5)").ValidateSafety().ok());
  EXPECT_FALSE(MustRule("q(X) :- r(X), lt(Y, 5)").ValidateSafety().ok());
  // Head variables cannot be bound by a comparison alone.
  EXPECT_FALSE(MustRule("q(Y) :- r(X), lt(X, Y)").ValidateSafety().ok());
}

TEST(ComparisonEvaluationTest, FiltersQueryResults) {
  datalog::Database db;
  for (const char* fact : {"price(cam1, 300)", "price(cam2, 700)",
                           "price(cam3, 450)"}) {
    db.AddFact(MustAtom(fact));
  }
  auto results =
      datalog::EvaluateQuery(MustRule("q(C) :- price(C, P), lt(P, 500)"), db);
  ASSERT_TRUE(results.ok()) << results.status();
  std::set<std::vector<Term>> got(results->begin(), results->end());
  EXPECT_EQ(got.size(), 2u);
  EXPECT_TRUE(got.contains({Term::Constant("cam1")}));
  EXPECT_TRUE(got.contains({Term::Constant("cam3")}));
}

TEST(ComparisonEvaluationTest, ComparisonFirstInBodyStillWorks) {
  datalog::Database db;
  db.AddFact(MustAtom("r(1)"));
  db.AddFact(MustAtom("r(9)"));
  auto results =
      datalog::EvaluateQuery(MustRule("q(X) :- gt(X, 5), r(X)"), db);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0][0], Term::Constant("9"));
}

TEST(ComparisonEvaluationTest, WorksInRuleBodies) {
  datalog::Database edb;
  edb.AddFact(MustAtom("price(cam1, 300)"));
  edb.AddFact(MustAtom("price(cam2, 700)"));
  auto result = datalog::EvaluateProgram(
      {MustRule("cheap(C) :- price(C, P), lt(P, 500)")}, edb);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->TuplesFor("cheap").size(), 1u);
  EXPECT_TRUE(result->Contains(MustAtom("cheap(cam1)")));
}

TEST(ComparisonEvaluationTest, NonNumericComparisonErrors) {
  datalog::Database db;
  db.AddFact(MustAtom("r(ford)"));
  auto results =
      datalog::EvaluateQuery(MustRule("q(X) :- r(X), lt(X, 5)"), db);
  EXPECT_FALSE(results.ok());
}

TEST(ComparisonContainmentTest, BoundsImplication) {
  // lt(P, 300) implies lt(P, 500).
  EXPECT_TRUE(datalog::IsContainedIn(
      MustRule("q(C) :- price(C,P), lt(P, 300)"),
      MustRule("q(C) :- price(C,P), lt(P, 500)")));
  EXPECT_FALSE(datalog::IsContainedIn(
      MustRule("q(C) :- price(C,P), lt(P, 500)"),
      MustRule("q(C) :- price(C,P), lt(P, 300)")));
  // le at the same bound is implied by lt.
  EXPECT_TRUE(datalog::IsContainedIn(
      MustRule("q(C) :- price(C,P), lt(P, 500)"),
      MustRule("q(C) :- price(C,P), le(P, 500)")));
  // ... but not vice versa.
  EXPECT_FALSE(datalog::IsContainedIn(
      MustRule("q(C) :- price(C,P), le(P, 500)"),
      MustRule("q(C) :- price(C,P), lt(P, 500)")));
  // ge/gt lower bounds.
  EXPECT_TRUE(datalog::IsContainedIn(
      MustRule("q(C) :- price(C,P), gt(P, 1000)"),
      MustRule("q(C) :- price(C,P), ge(P, 1000)")));
  // neq implied by a gap.
  EXPECT_TRUE(datalog::IsContainedIn(
      MustRule("q(C) :- price(C,P), gt(P, 100)"),
      MustRule("q(C) :- price(C,P), neq(P, 50)")));
  // Plain query contains the constrained one, never the reverse.
  EXPECT_TRUE(datalog::IsContainedIn(
      MustRule("q(C) :- price(C,P), lt(P, 500)"),
      MustRule("q(C) :- price(C,P)")));
  EXPECT_FALSE(datalog::IsContainedIn(
      MustRule("q(C) :- price(C,P)"),
      MustRule("q(C) :- price(C,P), lt(P, 500)")));
}

TEST(ComparisonContainmentTest, UnsatisfiableSubIsContainedInAnything) {
  EXPECT_TRUE(datalog::IsContainedIn(
      MustRule("q(C) :- price(C,P), lt(P, 100), gt(P, 200)"),
      MustRule("q(C) :- price(C,P), lt(P, 50)")));
}

TEST(ComparisonContainmentTest, ExactVarVarComparisonMatches) {
  EXPECT_TRUE(datalog::IsContainedIn(
      MustRule("q(A,B) :- r(A,B), lt(A, B)"),
      MustRule("q(A,B) :- r(A,B), lt(A, B)")));
  // Flipped form gt(B, A) == lt(A, B).
  EXPECT_TRUE(datalog::IsContainedIn(
      MustRule("q(A,B) :- r(A,B), lt(A, B)"),
      MustRule("q(A,B) :- r(A,B), gt(B, A)")));
}

class CameraPriceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.schema().AddRelation("sells", 2).ok());
    ASSERT_TRUE(catalog_.schema().AddRelation("review", 2).ok());
    // Three sellers with price-band views and two review sites.
    for (const char* text : {
             "budget(C,P)  :- sells(C,P), lt(P, 500)",
             "premium(C,P) :- sells(C,P), ge(P, 1000)",
             "anyshop(C,P) :- sells(C,P)",
             "reviews(C,R) :- review(C,R)",
         }) {
      ASSERT_TRUE(catalog_.AddSourceFromText(text).ok());
    }
    query_ = MustRule("q(C,R) :- sells(C,P), review(C,R), lt(P, 400)");
  }

  datalog::Catalog catalog_;
  ConjunctiveQuery query_;
};

TEST_F(CameraPriceFixture, BucketsCoverRelationalSubgoalsOnly) {
  auto buckets = reformulation::BuildBuckets(query_, catalog_);
  ASSERT_TRUE(buckets.ok()) << buckets.status();
  ASSERT_EQ(buckets->buckets.size(), 2u);  // sells, review
  // All three sellers are bucket candidates (relevance ignores constraints;
  // soundness filters).
  EXPECT_EQ(buckets->buckets[0].size(), 3u);
  EXPECT_EQ(buckets->buckets[1].size(), 1u);
}

TEST_F(CameraPriceFixture, ContradictorySourceIsFilteredAsUnsound) {
  // premium (P >= 1000) cannot serve a query that demands P < 400...
  auto premium = reformulation::BuildSoundPlan(query_, catalog_, {1, 3});
  ASSERT_TRUE(premium.ok());
  EXPECT_FALSE(premium->has_value());
  // ... while budget (P < 500) and anyshop can.
  auto budget = reformulation::BuildSoundPlan(query_, catalog_, {0, 3});
  ASSERT_TRUE(budget.ok());
  ASSERT_TRUE(budget->has_value());
  auto anyshop = reformulation::BuildSoundPlan(query_, catalog_, {2, 3});
  ASSERT_TRUE(anyshop.ok());
  EXPECT_TRUE(anyshop->has_value());
  // The sound rewriting carries the price filter.
  bool has_filter = false;
  for (const Atom& atom : (*budget)->rewriting.body) {
    if (datalog::IsComparisonAtom(atom)) has_filter = true;
  }
  EXPECT_TRUE(has_filter);
}

TEST_F(CameraPriceFixture, EndToEndAnswersRespectTheFilter) {
  // Materialize: budget holds cheap cameras, premium the expensive ones.
  datalog::Database source_db;
  for (const char* fact :
       {"budget(cam1, 300)", "budget(cam2, 450)", "premium(cam3, 1200)",
        "anyshop(cam1, 300)", "anyshop(cam3, 1200)", "reviews(cam1, r1)",
        "reviews(cam2, r2)", "reviews(cam3, r3)"}) {
    source_db.AddFact(MustAtom(fact));
  }
  auto plans = reformulation::EnumerateSoundPlans(query_, catalog_);
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(plans->size(), 2u);  // budget & anyshop, each with reviews
  std::set<std::vector<Term>> answers;
  for (const auto& plan : *plans) {
    auto tuples = datalog::EvaluateQuery(plan.rewriting, source_db);
    ASSERT_TRUE(tuples.ok()) << tuples.status();
    answers.insert(tuples->begin(), tuples->end());
  }
  // cam1 (300 < 400) qualifies; cam2 (450) and cam3 (1200) do not.
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_TRUE(answers.contains(
      {Term::Constant("cam1"), Term::Constant("r1")}));
}

TEST_F(CameraPriceFixture, InverseRulesAgree) {
  datalog::Database source_db;
  for (const char* fact :
       {"budget(cam1, 300)", "budget(cam2, 450)", "premium(cam3, 1200)",
        "anyshop(cam1, 300)", "anyshop(cam3, 1200)", "reviews(cam1, r1)",
        "reviews(cam2, r2)", "reviews(cam3, r3)"}) {
    source_db.AddFact(MustAtom(fact));
  }
  auto certain =
      reformulation::AnswerWithInverseRules(query_, catalog_, source_db);
  ASSERT_TRUE(certain.ok()) << certain.status();
  ASSERT_EQ(certain->size(), 1u);
  EXPECT_EQ((*certain)[0][0], Term::Constant("cam1"));
}

TEST_F(CameraPriceFixture, DependentJoinAppliesFilters) {
  exec::SourceRegistry registry;
  auto budget = registry.Register("budget", 2);
  auto reviews = registry.Register("reviews", 2);
  ASSERT_TRUE(budget.ok() && reviews.ok());
  ASSERT_TRUE(
      (*budget)->Add({Term::Constant("cam1"), Term::Constant("300")}).ok());
  ASSERT_TRUE(
      (*budget)->Add({Term::Constant("cam2"), Term::Constant("450")}).ok());
  ASSERT_TRUE(
      (*reviews)->Add({Term::Constant("cam1"), Term::Constant("r1")}).ok());
  ASSERT_TRUE(
      (*reviews)->Add({Term::Constant("cam2"), Term::Constant("r2")}).ok());

  auto plan = reformulation::BuildSoundPlan(query_, catalog_, {0, 3});
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->has_value());
  exec::ExecutionTrace trace;
  auto answers =
      exec::ExecutePlanDependent((*plan)->rewriting, registry, &trace);
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0][0], Term::Constant("cam1"));
  // Filters show up in the trace with zero source contact.
  int64_t filter_calls = 0;
  for (const auto& a : trace.atoms) {
    if (datalog::IsComparisonPredicate(a.source)) filter_calls += a.calls;
  }
  EXPECT_EQ(filter_calls, 0);
}

TEST_F(CameraPriceFixture, MiniConDeclinesComparisons) {
  auto mcds = reformulation::FormMcds(query_, catalog_);
  EXPECT_FALSE(mcds.ok());
  EXPECT_EQ(mcds.status().code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace planorder
