/// Pull-API edge cases of exec::MediatorStream: exhaustion is sticky,
/// TakeResult cancels mid-run at a step boundary, and a query with no sound
/// plan at all still streams its (all-discarded) steps and finishes with an
/// empty answer set.

#include "exec/mediator.h"

#include <gtest/gtest.h>

#include "core/pi.h"
#include "core/streamer.h"
#include "datalog/parser.h"
#include "exec/synthetic_domain.h"
#include "test_util.h"
#include "utility/coverage_model.h"

namespace planorder::exec {
namespace {

stats::WorkloadOptions SmallOptions(uint64_t seed) {
  stats::WorkloadOptions options;
  options.query_length = 3;
  options.bucket_size = 4;
  options.overlap_rate = 0.4;
  options.regions_per_bucket = 8;
  options.seed = seed;
  return options;
}

TEST(MediatorStreamTest, ExhaustionIsSticky) {
  auto domain = BuildSyntheticDomain(SmallOptions(61), 100);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  utility::CoverageModel model(&d.workload);
  auto orderer = core::StreamerOrderer::Create(
      &d.workload, &model, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer.ok());
  Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  auto executor = MakeSetOrientedExecutor(&d.source_facts);
  Mediator::RunLimits limits;
  limits.max_plans = 5;
  auto stream = mediator.OpenStream(**orderer, limits, *executor);
  ASSERT_TRUE(stream.ok());

  for (int i = 0; i < limits.max_plans; ++i) {
    auto step = stream->NextStep();
    ASSERT_TRUE(step.ok()) << step.status();
    EXPECT_FALSE(stream->done());
  }
  // The limit trips on the next pull — and every pull after that keeps
  // returning kNotFound instead of touching the orderer again.
  for (int i = 0; i < 3; ++i) {
    auto over = stream->NextStep();
    ASSERT_FALSE(over.ok());
    EXPECT_EQ(over.status().code(), StatusCode::kNotFound);
    EXPECT_TRUE(stream->done());
  }
  EXPECT_EQ(stream->result().steps.size(), 5u);
}

TEST(MediatorStreamTest, TakeResultCancelsMidRun) {
  auto domain = BuildSyntheticDomain(SmallOptions(62), 200);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  utility::CoverageModel model(&d.workload);
  auto orderer = core::StreamerOrderer::Create(
      &d.workload, &model, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer.ok());
  Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  auto executor = MakeSetOrientedExecutor(&d.source_facts);
  Mediator::RunLimits limits;
  limits.max_plans = 64;
  auto stream = mediator.OpenStream(**orderer, limits, *executor);
  ASSERT_TRUE(stream.ok());

  auto first = stream->NextStep();
  auto second = stream->NextStep();
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_FALSE(stream->done());

  // Cancelling between steps finalizes exactly what was pulled: two steps,
  // the answers they contributed, nothing from the 62 never-executed plans.
  MediatorResult result = stream->TakeResult();
  EXPECT_TRUE(stream->done());
  ASSERT_EQ(result.steps.size(), 2u);
  EXPECT_EQ(result.total_answers, second->total_answers);

  auto after = stream->NextStep();
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kNotFound);
}

TEST(MediatorStreamTest, StreamedStepsMatchBatchRun) {
  auto domain = BuildSyntheticDomain(SmallOptions(63), 150);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);

  utility::CoverageModel model_a(&d.workload);
  auto orderer_a = core::PiOrderer::Create(
      &d.workload, &model_a, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer_a.ok());
  auto batch = mediator.Run(**orderer_a, 16);
  ASSERT_TRUE(batch.ok());

  utility::CoverageModel model_b(&d.workload);
  auto orderer_b = core::PiOrderer::Create(
      &d.workload, &model_b, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer_b.ok());
  auto executor = MakeSetOrientedExecutor(&d.source_facts);
  Mediator::RunLimits limits;
  limits.max_plans = 16;
  auto stream = mediator.OpenStream(**orderer_b, limits, *executor);
  ASSERT_TRUE(stream.ok());
  std::vector<MediatorStep> steps;
  while (true) {
    auto step = stream->NextStep();
    if (!step.ok()) {
      ASSERT_EQ(step.status().code(), StatusCode::kNotFound) << step.status();
      break;
    }
    steps.push_back(*step);
  }
  MediatorResult streamed = stream->TakeResult();

  ASSERT_EQ(steps.size(), batch->steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i].plan, batch->steps[i].plan) << "step " << i;
    EXPECT_EQ(steps[i].total_answers, batch->steps[i].total_answers)
        << "step " << i;
  }
  EXPECT_EQ(streamed.total_answers, batch->total_answers);
}

TEST(MediatorStreamTest, ZeroSoundPlanQueryStreamsDiscardsOnly) {
  // Every source projects away the join variable, so no combination can be
  // enforced soundly: the stream still yields one step per plan (all
  // discarded) and finishes with zero answers.
  datalog::Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("p", 2).ok());
  ASSERT_TRUE(catalog.schema().AddRelation("r", 2).ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vp1(A) :- p(A, B)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vp2(A) :- p(A, B)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vr1(C) :- r(B, C)").ok());
  ASSERT_TRUE(catalog.AddSourceFromText("vr2(C) :- r(B, C)").ok());
  auto query = datalog::ParseRule("q(A,C) :- p(A,B), r(B,C)");
  ASSERT_TRUE(query.ok());

  // The orderer speaks bucket-index over any 2x2 workload; the catalog
  // translation is what matters here.
  const stats::Workload workload = test::MakeWorkload(2, 2, 0.4, 64);
  utility::CoverageModel model(&workload);
  auto orderer = core::PiOrderer::Create(&workload, &model,
                                         {core::PlanSpace::FullSpace(workload)});
  ASSERT_TRUE(orderer.ok());

  datalog::Database facts;
  Mediator mediator(&catalog, *query, &facts, {{0, 1}, {2, 3}});
  auto executor = MakeSetOrientedExecutor(&facts);
  Mediator::RunLimits limits;
  limits.max_plans = 16;
  auto stream = mediator.OpenStream(**orderer, limits, *executor);
  ASSERT_TRUE(stream.ok());

  int steps = 0;
  while (true) {
    auto step = stream->NextStep();
    if (!step.ok()) {
      ASSERT_EQ(step.status().code(), StatusCode::kNotFound) << step.status();
      break;
    }
    EXPECT_FALSE(step->sound);
    EXPECT_EQ(step->answers_from_plan, 0u);
    ++steps;
  }
  EXPECT_EQ(steps, 4);  // 2^2 plans, all pulled, all discarded
  MediatorResult result = stream->TakeResult();
  EXPECT_EQ(result.sound_plans, 0u);
  EXPECT_EQ(result.total_answers, 0u);
}

TEST(MediatorStreamTest, RejectsNonPositiveMaxPlans) {
  auto domain = BuildSyntheticDomain(SmallOptions(64), 20);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;
  utility::CoverageModel model(&d.workload);
  auto orderer = core::PiOrderer::Create(
      &d.workload, &model, {core::PlanSpace::FullSpace(d.workload)});
  ASSERT_TRUE(orderer.ok());
  Mediator mediator(&d.catalog, d.query, &d.source_facts, d.source_ids);
  auto executor = MakeSetOrientedExecutor(&d.source_facts);
  Mediator::RunLimits limits;
  limits.max_plans = 0;
  auto stream = mediator.OpenStream(**orderer, limits, *executor);
  ASSERT_FALSE(stream.ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace planorder::exec
