/// Randomized cross-validation of the three reformulation paths. For random
/// LAV catalogs, queries and database instances:
///
///  - every plan the bucket algorithm emits is sound, also instance-level;
///  - the inverse-rule program computes the certain answers, which must
///    contain the union of the bucket plans' answers, and must EQUAL the
///    union of the MiniCon plans' answers (both characterize the maximally
///    contained rewriting for conjunctive queries);
///  - with projection-free views the bucket union matches too.
///
/// Two independent implementations (top-down rewriting vs bottom-up datalog
/// with Skolems) agreeing on random inputs is the strongest correctness
/// signal this module has.

#include <random>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "datalog/evaluator.h"
#include "datalog/parser.h"
#include "reformulation/inverse_rules.h"
#include "reformulation/minicon.h"
#include "reformulation/rewriting.h"
#include "test_util.h"

namespace planorder::reformulation {
namespace {

using datalog::Atom;
using datalog::Catalog;
using datalog::ConjunctiveQuery;
using datalog::Database;
using datalog::Term;

struct FuzzDomain {
  Catalog catalog;
  ConjunctiveQuery query;
  Database schema_facts;
  Database source_facts;
};

/// Chain-style random domains: relations p0..p{m-1} of arity 2 over a small
/// constant pool; sources see one or two adjacent subgoals with random
/// head projections (kept safe/retrievable by construction choices below).
FuzzDomain MakeDomain(std::mt19937_64& rng, bool allow_projection) {
  FuzzDomain d;
  const int m = 2 + static_cast<int>(rng() % 2);  // 2..3 subgoals
  for (int b = 0; b < m; ++b) {
    EXPECT_TRUE(
        d.catalog.schema().AddRelation("p" + std::to_string(b), 2).ok());
  }
  // Query: q(X0, Xm) :- p0(X0,X1), ..., p{m-1}(X{m-1},Xm).
  d.query.head.predicate = "q";
  d.query.head.args = {Term::Variable("X0"),
                       Term::Variable("X" + std::to_string(m))};
  for (int b = 0; b < m; ++b) {
    d.query.body.push_back(
        Atom("p" + std::to_string(b),
             {Term::Variable("X" + std::to_string(b)),
              Term::Variable("X" + std::to_string(b + 1))}));
  }

  // Sources: for each subgoal 2-3 single-atom views (some projecting when
  // allowed), plus occasionally a two-atom view joining adjacent subgoals
  // whose join variable may be projected away (the MiniCon-only case).
  int source_counter = 0;
  for (int b = 0; b < m; ++b) {
    const int count = 2 + static_cast<int>(rng() % 2);
    for (int i = 0; i < count; ++i) {
      const std::string name = "v" + std::to_string(source_counter++);
      datalog::SourceDescription s;
      s.name = name;
      s.view.head = Atom(name, {Term::Variable("A"), Term::Variable("B")});
      s.view.body = {Atom("p" + std::to_string(b),
                          {Term::Variable("A"), Term::Variable("B")})};
      EXPECT_TRUE(d.catalog.AddSource(std::move(s)).ok());
    }
  }
  for (int b = 0; b + 1 < m; ++b) {
    if (rng() % 2 == 0) continue;
    const std::string name = "w" + std::to_string(source_counter++);
    datalog::SourceDescription s;
    s.name = name;
    const bool project_join = allow_projection && (rng() % 2 == 0);
    if (project_join) {
      s.view.head = Atom(name, {Term::Variable("A"), Term::Variable("C")});
    } else {
      s.view.head = Atom(name, {Term::Variable("A"), Term::Variable("B"),
                                Term::Variable("C")});
    }
    s.view.body = {Atom("p" + std::to_string(b),
                        {Term::Variable("A"), Term::Variable("B")}),
                   Atom("p" + std::to_string(b + 1),
                        {Term::Variable("B"), Term::Variable("C")})};
    EXPECT_TRUE(d.catalog.AddSource(std::move(s)).ok());
  }

  // Random schema instance over a small constant pool; sources materialize
  // random subsets of their full view extensions (sources are incomplete).
  const int pool = 5;
  auto constant = [](int x) { return Term::Constant("c" + std::to_string(x)); };
  for (int b = 0; b < m; ++b) {
    const int facts = 6 + static_cast<int>(rng() % 6);
    for (int f = 0; f < facts; ++f) {
      d.schema_facts.AddFact(
          Atom("p" + std::to_string(b),
               {constant(static_cast<int>(rng() % pool)),
                constant(static_cast<int>(rng() % pool))}));
    }
  }
  for (datalog::SourceId id = 0; id < d.catalog.num_sources(); ++id) {
    auto tuples =
        datalog::EvaluateQuery(d.catalog.source(id).view, d.schema_facts);
    EXPECT_TRUE(tuples.ok());
    for (const auto& tuple : *tuples) {
      if (rng() % 4 == 0) continue;  // drop ~25%: sources are incomplete
      d.source_facts.AddFact(Atom(d.catalog.source(id).name, tuple));
    }
  }
  return d;
}

using AnswerSet = std::set<std::vector<Term>>;

AnswerSet UnionOfPlanAnswers(const std::vector<QueryPlan>& plans,
                             const Database& source_facts) {
  AnswerSet answers;
  for (const QueryPlan& plan : plans) {
    auto tuples = datalog::EvaluateQuery(plan.rewriting, source_facts);
    EXPECT_TRUE(tuples.ok());
    answers.insert(tuples->begin(), tuples->end());
  }
  return answers;
}

class ReformulationFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReformulationFuzzTest, AllPathsAgreeOnCertainAnswers) {
  test::SeededScenario scenario("reformulation_fuzz_test", GetParam());
  std::mt19937_64& rng = scenario.rng();
  for (int round = 0; round < 8; ++round) {
    FuzzDomain d = MakeDomain(rng, /*allow_projection=*/true);

    // Ground truth: answers over the (hidden) schema instance bound every
    // sound plan's output.
    auto truth = datalog::EvaluateQuery(d.query, d.schema_facts);
    ASSERT_TRUE(truth.ok());
    const AnswerSet truth_set(truth->begin(), truth->end());

    auto bucket_plans = EnumerateSoundPlans(d.query, d.catalog);
    ASSERT_TRUE(bucket_plans.ok());
    const AnswerSet bucket_answers =
        UnionOfPlanAnswers(*bucket_plans, d.source_facts);

    auto minicon_plans = EnumerateMiniConPlans(d.query, d.catalog);
    ASSERT_TRUE(minicon_plans.ok()) << minicon_plans.status();
    const AnswerSet minicon_answers =
        UnionOfPlanAnswers(*minicon_plans, d.source_facts);

    auto certain =
        AnswerWithInverseRules(d.query, d.catalog, d.source_facts);
    ASSERT_TRUE(certain.ok());
    const AnswerSet certain_set(certain->begin(), certain->end());

    // Soundness everywhere: nothing outside the ground truth.
    for (const auto& t : bucket_answers) EXPECT_TRUE(truth_set.contains(t));
    for (const auto& t : minicon_answers) EXPECT_TRUE(truth_set.contains(t));
    for (const auto& t : certain_set) EXPECT_TRUE(truth_set.contains(t));

    // The inverse-rule program computes the certain answers; MiniCon's
    // rewritings are maximally contained, so their union must match.
    EXPECT_EQ(minicon_answers, certain_set) << "round " << round;

    // The naive bucket combination is contained in both (it misses only
    // the projected-join rewritings).
    for (const auto& t : bucket_answers) {
      EXPECT_TRUE(certain_set.contains(t)) << "round " << round;
    }
  }
}

TEST_P(ReformulationFuzzTest, ProjectionFreeViewsMakeAllPathsEqual) {
  test::SeededScenario scenario("reformulation_fuzz_test",
                                GetParam() * 977 + 3);
  std::mt19937_64& rng = scenario.rng();
  for (int round = 0; round < 8; ++round) {
    FuzzDomain d = MakeDomain(rng, /*allow_projection=*/false);
    auto bucket_plans = EnumerateSoundPlans(d.query, d.catalog);
    ASSERT_TRUE(bucket_plans.ok());
    const AnswerSet bucket_answers =
        UnionOfPlanAnswers(*bucket_plans, d.source_facts);
    auto certain =
        AnswerWithInverseRules(d.query, d.catalog, d.source_facts);
    ASSERT_TRUE(certain.ok());
    const AnswerSet certain_set(certain->begin(), certain->end());
    EXPECT_EQ(bucket_answers, certain_set) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReformulationFuzzTest,
                         ::testing::Values(301, 302, 303, 304, 305));

}  // namespace
}  // namespace planorder::reformulation
