#include "datalog/unify.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace planorder::datalog {
namespace {

Atom MustAtom(std::string_view text) {
  auto atom = ParseAtom(text);
  EXPECT_TRUE(atom.ok()) << atom.status();
  return *atom;
}

TEST(UnifyTest, VariableBindsConstant) {
  Substitution subst;
  ASSERT_TRUE(UnifyTerms(Term::Variable("X"), Term::Constant("a"), subst));
  EXPECT_EQ(ApplySubstitution(Term::Variable("X"), subst), Term::Constant("a"));
}

TEST(UnifyTest, ConstantsMustMatch) {
  Substitution subst;
  EXPECT_TRUE(UnifyTerms(Term::Constant("a"), Term::Constant("a"), subst));
  EXPECT_FALSE(UnifyTerms(Term::Constant("a"), Term::Constant("b"), subst));
}

TEST(UnifyTest, VariableAliasing) {
  Substitution subst;
  ASSERT_TRUE(UnifyTerms(Term::Variable("X"), Term::Variable("Y"), subst));
  ASSERT_TRUE(UnifyTerms(Term::Variable("Y"), Term::Constant("c"), subst));
  EXPECT_EQ(ApplySubstitution(Term::Variable("X"), subst), Term::Constant("c"));
}

TEST(UnifyTest, SelfUnificationIsNoop) {
  Substitution subst;
  EXPECT_TRUE(UnifyTerms(Term::Variable("X"), Term::Variable("X"), subst));
  EXPECT_TRUE(subst.empty());
}

TEST(UnifyTest, ConflictFails) {
  Substitution subst;
  ASSERT_TRUE(UnifyTerms(Term::Variable("X"), Term::Constant("a"), subst));
  EXPECT_FALSE(UnifyTerms(Term::Variable("X"), Term::Constant("b"), subst));
}

TEST(UnifyTest, FunctionTermsUnifyRecursively) {
  Substitution subst;
  Term f1 = Term::Function("f", {Term::Variable("X"), Term::Constant("b")});
  Term f2 = Term::Function("f", {Term::Constant("a"), Term::Variable("Y")});
  ASSERT_TRUE(UnifyTerms(f1, f2, subst));
  EXPECT_EQ(ApplySubstitution(Term::Variable("X"), subst), Term::Constant("a"));
  EXPECT_EQ(ApplySubstitution(Term::Variable("Y"), subst), Term::Constant("b"));
}

TEST(UnifyTest, FunctionNameMismatchFails) {
  Substitution subst;
  EXPECT_FALSE(UnifyTerms(Term::Function("f", {Term::Constant("a")}),
                          Term::Function("g", {Term::Constant("a")}), subst));
}

TEST(UnifyTest, OccursCheckPreventsCycles) {
  Substitution subst;
  EXPECT_FALSE(UnifyTerms(Term::Variable("X"),
                          Term::Function("f", {Term::Variable("X")}), subst));
}

TEST(UnifyTest, AtomsUnify) {
  Substitution subst;
  ASSERT_TRUE(
      UnifyAtoms(MustAtom("p(X, b)"), MustAtom("p(a, Y)"), subst));
  EXPECT_EQ(ApplySubstitution(MustAtom("q(X, Y)"), subst).ToString(),
            "q(a,b)");
}

TEST(UnifyTest, AtomPredicateOrArityMismatchFails) {
  Substitution subst;
  EXPECT_FALSE(UnifyAtoms(MustAtom("p(X)"), MustAtom("q(X)"), subst));
  EXPECT_FALSE(UnifyAtoms(MustAtom("p(X)"), MustAtom("p(X, Y)"), subst));
}

TEST(UnifyTest, SharedVariableAcrossArguments) {
  Substitution subst;
  // p(X, X) against p(a, b) must fail; against p(a, a) must succeed.
  EXPECT_FALSE(UnifyAtoms(MustAtom("p(X, X)"), MustAtom("p(a, b)"), subst));
  Substitution subst2;
  EXPECT_TRUE(UnifyAtoms(MustAtom("p(X, X)"), MustAtom("p(a, a)"), subst2));
}

TEST(MatchTest, BindsPatternVariablesOnly) {
  Substitution subst;
  ASSERT_TRUE(MatchAtom(MustAtom("p(X, Y)"), MustAtom("p(a, Z)"), subst));
  EXPECT_EQ(subst.at("X"), Term::Constant("a"));
  // Y bound to the frozen variable Z; Z itself is never bound.
  EXPECT_EQ(subst.at("Y"), Term::Variable("Z"));
  EXPECT_FALSE(subst.contains("Z"));
}

TEST(MatchTest, FrozenTargetVariableIsOpaque) {
  // Pattern variable already bound to frozen Z must not re-unify Z.
  Substitution subst;
  ASSERT_TRUE(MatchTerm(Term::Variable("X"), Term::Variable("Z"), subst));
  EXPECT_TRUE(MatchTerm(Term::Variable("X"), Term::Variable("Z"), subst));
  EXPECT_FALSE(MatchTerm(Term::Variable("X"), Term::Constant("a"), subst));
}

TEST(MatchTest, RepeatedPatternVariableRequiresEqualTargets) {
  Substitution subst;
  EXPECT_FALSE(MatchAtom(MustAtom("p(X, X)"), MustAtom("p(a, b)"), subst));
  Substitution subst2;
  EXPECT_TRUE(MatchAtom(MustAtom("p(X, X)"), MustAtom("p(a, a)"), subst2));
}

TEST(MatchTest, ConstantPatternMatchesOnlyItself) {
  Substitution subst;
  EXPECT_TRUE(MatchTerm(Term::Constant("a"), Term::Constant("a"), subst));
  EXPECT_FALSE(MatchTerm(Term::Constant("a"), Term::Constant("b"), subst));
  EXPECT_FALSE(MatchTerm(Term::Constant("a"), Term::Variable("X"), subst));
}

TEST(ApplySubstitutionTest, ResolvesChains) {
  Substitution subst;
  subst["X"] = Term::Variable("Y");
  subst["Y"] = Term::Variable("Z");
  subst["Z"] = Term::Constant("end");
  EXPECT_EQ(ApplySubstitution(Term::Variable("X"), subst),
            Term::Constant("end"));
}

TEST(ApplySubstitutionTest, DescendsIntoFunctionTerms) {
  Substitution subst;
  subst["X"] = Term::Constant("a");
  Term t = Term::Function("f", {Term::Variable("X"), Term::Variable("Y")});
  EXPECT_EQ(ApplySubstitution(t, subst).ToString(), "f(a,Y)");
}

}  // namespace
}  // namespace planorder::datalog
