/// End-to-end integration test on the paper's Figure 1 movie domain:
/// schema + LAV sources + statistics -> buckets -> plan ordering (every
/// applicable algorithm x several measures) -> soundness filtering ->
/// dependent-join execution against materialized sources -> answers.
///
/// Checks the full-system invariants a downstream user relies on:
///  - every emitted sound plan returns only certain answers;
///  - the union over all plans equals the inverse-rule certain answers;
///  - every algorithm yields the same utility sequence and the same final
///    answer set;
///  - coverage-ordered execution reaches the full answer set at least as
///    fast (per plan) as reverse ordering.

#include <set>

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/idrips.h"
#include "core/pi.h"
#include "core/streamer.h"
#include "datalog/parser.h"
#include "exec/dependent_join.h"
#include "exec/source_access.h"
#include "reformulation/bucket.h"
#include "reformulation/inverse_rules.h"
#include "reformulation/rewriting.h"
#include "utility/cost_models.h"
#include "utility/measures.h"

namespace planorder {
namespace {

using datalog::Atom;
using datalog::ConjunctiveQuery;
using datalog::ParseAtom;
using datalog::ParseRule;
using datalog::Term;

class MovieIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.schema().AddRelation("play-in", 2).ok());
    ASSERT_TRUE(catalog_.schema().AddRelation("review-of", 2).ok());
    ASSERT_TRUE(catalog_.schema().AddRelation("american", 1).ok());
    ASSERT_TRUE(catalog_.schema().AddRelation("russian", 1).ok());
    for (const char* text : {
             "v1(A,M) :- play-in(A,M), american(M)",
             "v2(A,M) :- play-in(A,M), russian(M)",
             "v3(A,M) :- play-in(A,M)",
             "v4(R,M) :- review-of(R,M)",
             "v5(R,M) :- review-of(R,M)",
             "v6(R,M) :- review-of(R,M)",
         }) {
      ASSERT_TRUE(catalog_.AddSourceFromText(text).ok());
    }
    auto q = ParseRule("q(M,R) :- play-in(ford,M), review-of(R,M)");
    ASSERT_TRUE(q.ok());
    query_ = *q;

    // Ground truth. Ford in three american + one russian movie; reviews
    // scattered across the review sources (sources are incomplete).
    auto add = [&](const char* text) {
      auto atom = ParseAtom(text);
      ASSERT_TRUE(atom.ok());
      schema_db_.AddFact(*atom);
    };
    add("play-in(ford, witness)");
    add("play-in(ford, sabrina)");
    add("play-in(ford, 'air force one')");
    add("play-in(ford, anastasia)");
    add("play-in(kate, titanic)");
    add("american(witness)");
    add("american(sabrina)");
    add("american('air force one')");
    add("american(titanic)");
    add("russian(anastasia)");
    for (const char* fact :
         {"review-of(r1, witness)", "review-of(r2, witness)",
          "review-of(r3, sabrina)", "review-of(r4, 'air force one')",
          "review-of(r5, anastasia)", "review-of(r6, titanic)"}) {
      add(fact);
    }

    // Materialize incomplete sources: v1 misses sabrina; v4/v5/v6 split the
    // reviews unevenly with some overlap.
    auto materialize = [&](const char* source, const char* a, const char* b) {
      source_db_.AddFact(Atom(source, {Term::Constant(a), Term::Constant(b)}));
      exec::AccessibleSource* s = registry_.Find(source);
      ASSERT_NE(s, nullptr);
      ASSERT_TRUE(s->Add({Term::Constant(a), Term::Constant(b)}).ok());
    };
    for (const char* name : {"v1", "v2", "v3", "v4", "v5", "v6"}) {
      ASSERT_TRUE(registry_.Register(name, 2).ok());
    }
    materialize("v1", "ford", "witness");
    materialize("v1", "ford", "air force one");
    materialize("v2", "ford", "anastasia");
    materialize("v3", "ford", "witness");
    materialize("v3", "ford", "sabrina");
    materialize("v3", "kate", "titanic");
    materialize("v4", "r1", "witness");
    materialize("v4", "r3", "sabrina");
    materialize("v5", "r2", "witness");
    materialize("v5", "r4", "air force one");
    materialize("v6", "r5", "anastasia");
    materialize("v6", "r1", "witness");

    // Statistics for the six sources, aligned with the buckets below.
    auto buckets = reformulation::BuildBuckets(query_, catalog_);
    ASSERT_TRUE(buckets.ok());
    buckets_ = std::move(*buckets);
    std::vector<std::vector<stats::SourceStats>> stats(2);
    const double cardinalities[] = {2, 1, 3, 2, 2, 2};
    const double alphas[] = {0.3, 0.5, 0.2, 0.1, 0.4, 0.25};
    for (size_t b = 0; b < 2; ++b) {
      for (size_t i = 0; i < buckets_.buckets[b].size(); ++i) {
        stats::SourceStats s;
        const int id = buckets_.buckets[b][i];
        s.cardinality = cardinalities[id];
        s.transmission_cost = alphas[id];
        s.failure_prob = 0.1;
        s.regions.bits = uint64_t{1} << i;  // disjoint: independent plans
        stats[b].push_back(s);
      }
    }
    auto workload = stats::Workload::FromParts(
        stats, {std::vector<double>(3, 1.0 / 3), std::vector<double>(3, 1.0 / 3)},
        5.0, {10.0, 10.0});
    ASSERT_TRUE(workload.ok());
    workload_ = std::move(*workload);
  }

  /// Runs the full pipeline with `orderer`, returning per-plan utilities and
  /// the union of answers.
  struct PipelineResult {
    std::vector<double> utilities;
    std::set<std::vector<Term>> answers;
  };
  PipelineResult RunPipeline(core::Orderer& orderer) {
    PipelineResult result;
    while (true) {
      auto next = orderer.Next();
      if (!next.ok()) break;
      std::vector<datalog::SourceId> choice(next->plan.size());
      for (size_t b = 0; b < next->plan.size(); ++b) {
        choice[b] = buckets_.buckets[b][next->plan[b]];
      }
      auto plan = reformulation::BuildSoundPlan(query_, catalog_, choice);
      EXPECT_TRUE(plan.ok());
      if (!plan->has_value()) {
        orderer.ReportDiscarded();
        continue;
      }
      result.utilities.push_back(next->utility);
      auto tuples =
          exec::ExecutePlanDependent((*plan)->rewriting, registry_);
      EXPECT_TRUE(tuples.ok()) << tuples.status();
      result.answers.insert(tuples->begin(), tuples->end());
    }
    return result;
  }

  datalog::Catalog catalog_;
  ConjunctiveQuery query_;
  datalog::Database schema_db_;
  datalog::Database source_db_;
  exec::SourceRegistry registry_;
  reformulation::BucketResult buckets_;
  stats::Workload workload_;
};

TEST_F(MovieIntegrationTest, BucketsMatchFigure1) {
  ASSERT_EQ(buckets_.buckets.size(), 2u);
  EXPECT_EQ(buckets_.buckets[0].size(), 3u);  // v1, v2, v3
  EXPECT_EQ(buckets_.buckets[1].size(), 3u);  // v4, v5, v6
}

TEST_F(MovieIntegrationTest, AllAlgorithmsSameOrderingAndAnswers) {
  auto model = utility::MakeMeasure(utility::MeasureKind::kFailureNoCache,
                                    &workload_);
  ASSERT_TRUE(model.ok());
  const std::vector<core::PlanSpace> spaces = {
      core::PlanSpace::FullSpace(workload_)};

  std::vector<PipelineResult> results;
  {
    auto o = core::PiOrderer::Create(&workload_, model->get(), spaces);
    ASSERT_TRUE(o.ok());
    results.push_back(RunPipeline(**o));
  }
  {
    auto o = core::StreamerOrderer::Create(&workload_, model->get(), spaces);
    ASSERT_TRUE(o.ok());
    results.push_back(RunPipeline(**o));
  }
  {
    auto o = core::IDripsOrderer::Create(&workload_, model->get(), spaces);
    ASSERT_TRUE(o.ok());
    results.push_back(RunPipeline(**o));
  }
  ASSERT_EQ(results[0].utilities.size(), 9u);  // all nine plans sound
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].utilities.size(), results[0].utilities.size());
    for (size_t j = 0; j < results[0].utilities.size(); ++j) {
      EXPECT_NEAR(results[i].utilities[j], results[0].utilities[j], 1e-9);
    }
    EXPECT_EQ(results[i].answers, results[0].answers);
  }
  // Non-increasing utilities (full independence: unconditioned ordering).
  for (size_t j = 1; j < results[0].utilities.size(); ++j) {
    EXPECT_LE(results[0].utilities[j], results[0].utilities[j - 1] + 1e-12);
  }
}

TEST_F(MovieIntegrationTest, UnionOfPlansEqualsCertainAnswers) {
  auto model = utility::MakeMeasure(utility::MeasureKind::kCost2, &workload_);
  ASSERT_TRUE(model.ok());
  auto orderer = core::PiOrderer::Create(
      &workload_, model->get(), {core::PlanSpace::FullSpace(workload_)});
  ASSERT_TRUE(orderer.ok());
  const PipelineResult pipeline = RunPipeline(**orderer);

  auto certain =
      reformulation::AnswerWithInverseRules(query_, catalog_, source_db_);
  ASSERT_TRUE(certain.ok());
  const std::set<std::vector<Term>> certain_set(certain->begin(),
                                                certain->end());
  EXPECT_EQ(pipeline.answers, certain_set);
  EXPECT_FALSE(pipeline.answers.empty());

  // And everything is a true answer over the hidden ground truth.
  auto truth = datalog::EvaluateQuery(query_, schema_db_);
  ASSERT_TRUE(truth.ok());
  const std::set<std::vector<Term>> truth_set(truth->begin(), truth->end());
  for (const auto& t : pipeline.answers) {
    EXPECT_TRUE(truth_set.contains(t));
  }
}

TEST_F(MovieIntegrationTest, GreedyWorksOnAdditiveMeasure) {
  utility::AdditiveCostModel additive(&workload_);
  auto greedy = core::GreedyOrderer::Create(
      &workload_, &additive, {core::PlanSpace::FullSpace(workload_)});
  ASSERT_TRUE(greedy.ok());
  const PipelineResult pipeline = RunPipeline(**greedy);
  EXPECT_EQ(pipeline.utilities.size(), 9u);
  for (size_t j = 1; j < pipeline.utilities.size(); ++j) {
    EXPECT_LE(pipeline.utilities[j], pipeline.utilities[j - 1] + 1e-12);
  }
}

}  // namespace
}  // namespace planorder
