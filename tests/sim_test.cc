// The simulation harness itself (src/sim/): scenario generation and replay
// serialization, the exhaustive-order oracle's ability to actually reject
// wrong orderings (a differential checker that never fires is worthless),
// the greedy shrinker's fixpoint against a synthetic failure predicate, the
// virtual clock's interleaving independence, and an end-to-end RunScenario
// smoke over generated scenarios.
#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/clock.h"
#include "sim/harness.h"
#include "sim/oracle.h"
#include "sim/scenario.h"
#include "sim/shrink.h"
#include "test_util.h"

namespace planorder::sim {
namespace {

using test::MakeWorkload;

TEST(ScenarioTest, GenerationIsDeterministic) {
  for (int step = 0; step < 4; ++step) {
    const Scenario a = MakeScenario(17, step);
    const Scenario b = MakeScenario(17, step);
    EXPECT_EQ(a.Serialize(), b.Serialize()) << "step " << step;
    EXPECT_EQ(a.base_seed, 17u);
    EXPECT_EQ(a.step, step);
  }
  // Steps draw from independent streams; adjacent steps should not collide.
  EXPECT_NE(MakeScenario(17, 0).Serialize(), MakeScenario(17, 1).Serialize());
  EXPECT_NE(MakeScenario(17, 0).Serialize(), MakeScenario(18, 0).Serialize());
}

TEST(ScenarioTest, SerializeRoundTrips) {
  for (uint64_t seed : {1u, 42u, 20260806u}) {
    for (int step = 0; step < 3; ++step) {
      const Scenario original = MakeScenario(seed, step);
      auto parsed = Scenario::Deserialize(original.Serialize());
      ASSERT_TRUE(parsed.ok()) << parsed.status();
      EXPECT_EQ(parsed->Serialize(), original.Serialize())
          << "seed " << seed << " step " << step;
    }
  }
}

TEST(ScenarioTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Scenario::Deserialize("").ok());
  EXPECT_FALSE(Scenario::Deserialize("not a scenario").ok());
  EXPECT_FALSE(Scenario::Deserialize("query_length=banana").ok());
}

TEST(OracleTest, AcceptsCorrectOrderRejectsCorruptions) {
  const stats::Workload w = MakeWorkload(3, 4, 0.4, 31);
  const std::vector<core::PlanSpace> spaces = {core::PlanSpace::FullSpace(w)};
  // Coverage is conditional — the hardest case for the oracle's step-wise
  // recomputation (every emission changes later utilities).
  auto model = test::MustMakeMeasure(test::Measure::kCoverage, &w);
  auto orderer = MakeOrderer(AlgoKind::kPi, &w, model.get(),
                             /*probe_lower_bounds=*/false);
  ASSERT_TRUE(orderer.ok()) << orderer.status();
  auto emissions = Drain(**orderer, /*pool=*/nullptr);
  ASSERT_TRUE(emissions.ok()) << emissions.status();
  ASSERT_EQ(emissions->size(), 4u * 4u * 4u);

  EXPECT_TRUE(
      VerifyExactOrder(w, test::Measure::kCoverage, spaces, *emissions, 1e-9)
          .ok());

  {
    // Swapping the first and last emission breaks the argmax property.
    auto corrupted = *emissions;
    std::swap(corrupted.front(), corrupted.back());
    EXPECT_FALSE(VerifyExactOrder(w, test::Measure::kCoverage, spaces,
                                  corrupted, 1e-9)
                     .ok());
  }
  {
    // A misreported utility must be caught even when the order is right.
    auto corrupted = *emissions;
    corrupted[3].utility += 0.125;
    EXPECT_FALSE(VerifyExactOrder(w, test::Measure::kCoverage, spaces,
                                  corrupted, 1e-9)
                     .ok());
  }
  {
    // Emitting a plan twice (dropping another) is not a permutation.
    auto corrupted = *emissions;
    corrupted[1] = corrupted[0];
    EXPECT_FALSE(VerifyExactOrder(w, test::Measure::kCoverage, spaces,
                                  corrupted, 1e-9)
                     .ok());
  }
}

TEST(ShrinkTest, ReachesSyntheticFixpoint) {
  // A fully-loaded scenario; the synthetic bug "fails iff coverage is among
  // the measures and the query joins at least two buckets" ignores every
  // other axis, so the greedy walk must strip all of them.
  Scenario failing = MakeScenario(7, 0);
  failing.query_length = 4;
  failing.bucket_size = 5;
  failing.measures = AllMeasureKinds();
  failing.algos = AllAlgoKinds();
  failing.thread_counts = {2, 8};
  failing.probe_lower_bounds = true;
  failing.check_oracle = true;
  failing.check_monotone = true;
  failing.check_relabel = true;
  failing.check_runtime = true;

  int predicate_calls = 0;
  const ShrinkResult result = ShrinkWith(
      failing, SimOptions{},
      [&predicate_calls](const Scenario& s, const SimOptions&) -> Status {
        ++predicate_calls;
        const bool has_coverage =
            std::find(s.measures.begin(), s.measures.end(),
                      utility::MeasureKind::kCoverage) != s.measures.end();
        if (has_coverage && s.query_length >= 2) {
          return InternalError("synthetic coverage-join bug");
        }
        return OkStatus();
      });

  EXPECT_EQ(result.scenario.measures,
            std::vector<utility::MeasureKind>{utility::MeasureKind::kCoverage});
  EXPECT_EQ(result.scenario.query_length, 2);
  EXPECT_EQ(result.scenario.bucket_size, 2);
  EXPECT_EQ(result.scenario.algos.size(), 1u);
  EXPECT_TRUE(result.scenario.thread_counts.empty());
  EXPECT_FALSE(result.scenario.probe_lower_bounds);
  EXPECT_FALSE(result.scenario.check_oracle);
  EXPECT_FALSE(result.scenario.check_monotone);
  EXPECT_FALSE(result.scenario.check_relabel);
  EXPECT_FALSE(result.scenario.check_runtime);
  EXPECT_EQ(result.scenario.regions_per_bucket, 2);
  EXPECT_EQ(result.failure, "synthetic coverage-join bug");
  EXPECT_EQ(result.attempts, predicate_calls);
  EXPECT_GE(result.rounds, 2);  // at least one adopting pass + the fixpoint
}

TEST(VirtualClockTest, ConcurrentAdvanceIsInterleavingIndependent) {
  // Atomic integer-nanosecond accumulation commutes, so the elapsed total
  // after a fixed multiset of sleeps must be exact and thread-schedule
  // independent — the property CheckRuntimeEquivalence leans on.
  double expected = 0.0;
  for (int run = 0; run < 3; ++run) {
    runtime::VirtualClock clock;
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&clock, t] {
        for (int i = 0; i < 1000; ++i) {
          clock.SleepMs(0.25 * (t + 1), /*dilation=*/3.0);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    if (run == 0) {
      expected = clock.NowMs();
      // 1000 * 0.25ms * (1+2+...+8) = 9000ms, undilated.
      EXPECT_DOUBLE_EQ(expected, 9000.0);
    } else {
      EXPECT_DOUBLE_EQ(clock.NowMs(), expected) << "run " << run;
    }
  }
}

TEST(SimHarnessTest, RunScenarioSmoke) {
  SimReport report;
  for (int step = 0; step < 2; ++step) {
    const Scenario scenario = MakeScenario(20260806, step);
    Status status = RunScenario(scenario, SimOptions{}, &report);
    EXPECT_TRUE(status.ok()) << scenario.Summary() << ": " << status;
  }
  EXPECT_GT(report.checks, 0);
}

/// A small scenario with the multi-session cluster check forced on: serial
/// oracle, concurrent replay and answer comparison all hold on correct code.
Scenario MultiScenario() {
  Scenario scenario = MakeScenario(31, 0);
  scenario.query_length = 2;
  scenario.bucket_size = 3;
  scenario.num_answers = 60;
  scenario.measures.clear();  // the multi check alone
  scenario.check_oracle = false;
  scenario.check_monotone = false;
  scenario.check_relabel = false;
  scenario.check_runtime = false;
  scenario.check_ranked = false;
  scenario.check_multi = true;
  scenario.num_sessions = 3;
  scenario.num_shards = 2;
  scenario.multi_inject_stale = false;
  return scenario;
}

TEST(SimMultiSessionTest, PropertyHoldsOnCorrectCode) {
  SimReport report;
  const Scenario scenario = MultiScenario();
  Status status = RunScenario(scenario, SimOptions{}, &report);
  EXPECT_TRUE(status.ok()) << scenario.Summary() << ": " << status;
  EXPECT_GT(report.checks, 0);
}

TEST(SimMultiSessionTest, InjectedStaleUtilityBugIsCaughtAndShrinks) {
  // The planted bug: sessions poll the shared cache's residency view only at
  // open, never per step (ServiceOptions::refresh_source_cache_view = false),
  // so emitted utilities stop reflecting cache state at eval time. The
  // serial view-read oracle must fail — and the shrinker must walk the
  // reproducer down while the failure persists.
  Scenario scenario = MultiScenario();
  scenario.multi_inject_stale = true;
  Status status = RunScenario(scenario, SimOptions{}, /*report=*/nullptr);
  ASSERT_FALSE(status.ok())
      << "stale cross-session utilities went undetected: "
      << scenario.Summary();
  EXPECT_NE(std::string(status.message()).find("check=multi"),
            std::string::npos)
      << status;

  const ShrinkResult minimized = Shrink(scenario, SimOptions{});
  EXPECT_FALSE(minimized.failure.empty());
  // The failing axis cannot be shrunk away: the multi check must survive
  // minimization, and the stale injection rides on the scenario unchanged.
  EXPECT_TRUE(minimized.scenario.check_multi);
  EXPECT_TRUE(minimized.scenario.multi_inject_stale);
  EXPECT_LE(minimized.scenario.num_sessions, scenario.num_sessions);
  EXPECT_LE(minimized.scenario.num_shards, scenario.num_shards);
  EXPECT_GE(minimized.rounds, 1);
}

/// A pinned scenario with only the adaptive re-ranking check on. Seed 31
/// step 0 draws 27 plans with a cardinality-sensitive measure and a drift
/// schedule that actually crosses the divergence band — the property has
/// teeth here (the stale variant below fails at this exact scenario).
Scenario DriftScenario() {
  Scenario scenario = MakeScenario(31, 0);
  scenario.measures.clear();  // the drift check alone
  scenario.check_oracle = false;
  scenario.check_monotone = false;
  scenario.check_relabel = false;
  scenario.check_runtime = false;
  scenario.check_ranked = false;
  scenario.check_multi = false;
  scenario.check_drift = true;
  scenario.drift_inject_stale = false;
  return scenario;
}

TEST(SimDriftTest, PropertyHoldsOnCorrectCode) {
  SimReport report;
  const Scenario scenario = DriftScenario();
  Status status = RunScenario(scenario, SimOptions{}, &report);
  EXPECT_TRUE(status.ok()) << scenario.Summary() << ": " << status;
  EXPECT_GT(report.checks, 0);
}

TEST(SimDriftTest, InjectedStaleStatsBugIsCaughtAndShrinks) {
  // The planted bug: the adaptive orderer's divergence reaction is disabled
  // (stats fold but never trigger a mid-stream re-rank), so once observed
  // cardinalities drift out of band its emissions diverge from the
  // rebuild-from-observed-stats oracle. The check must fail — and the
  // shrinker must keep both the drift check and the injection while it
  // minimizes.
  Scenario scenario = DriftScenario();
  scenario.drift_inject_stale = true;
  Status status = RunScenario(scenario, SimOptions{}, /*report=*/nullptr);
  ASSERT_FALSE(status.ok())
      << "stale adaptive statistics went undetected: " << scenario.Summary();
  EXPECT_NE(std::string(status.message()).find("check=drift"),
            std::string::npos)
      << status;

  const ShrinkResult minimized = Shrink(scenario, SimOptions{});
  EXPECT_FALSE(minimized.failure.empty());
  EXPECT_TRUE(minimized.scenario.check_drift);
  EXPECT_TRUE(minimized.scenario.drift_inject_stale);
  EXPECT_LE(minimized.scenario.drift_sources, scenario.drift_sources);
  EXPECT_GE(minimized.rounds, 1);
}

}  // namespace
}  // namespace planorder::sim
