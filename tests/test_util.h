#ifndef PLANORDER_TESTS_TEST_UTIL_H_
#define PLANORDER_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/idrips.h"
#include "core/orderer.h"
#include "core/pi.h"
#include "core/streamer.h"
#include "utility/cost_models.h"
#include "utility/coverage_model.h"
#include "utility/measures.h"

namespace planorder::test {

inline stats::Workload MakeWorkload(int query_length, int bucket_size,
                                    double overlap, uint64_t seed) {
  stats::WorkloadOptions options;
  options.query_length = query_length;
  options.bucket_size = bucket_size;
  options.overlap_rate = overlap;
  options.regions_per_bucket = 12;
  options.seed = seed;
  auto w = stats::Workload::Generate(options);
  EXPECT_TRUE(w.ok()) << w.status();
  return std::move(*w);
}

/// The utility measures of Section 6, via the library factory.
using Measure = utility::MeasureKind;

inline std::string MeasureName(Measure m) {
  return utility::MeasureKindName(m);
}

inline std::unique_ptr<utility::UtilityModel> MustMakeMeasure(
    Measure measure, const stats::Workload* w) {
  auto model = ::planorder::utility::MakeMeasure(measure, w);
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(*model);
}

/// Failure context for seeded randomized tests. Construct one at the top of
/// a TEST_P body with the test target's name and the seed actually used;
/// every assertion that fails in scope then reports the seed plus a
/// copy-paste replay command pinning the exact parameterized instance:
///
///   TEST_P(MyFuzzTest, Property) {
///     SeededScenario scenario("my_fuzz_test", GetParam());
///     std::mt19937_64& rng = scenario.rng();
///     ...
///   }
///
/// This is the gtest-side counterpart of planorder_sim's --replay=seed:step
/// reporting (DESIGN.md §7): a randomized failure is only actionable if its
/// report alone reproduces it.
class SeededScenario {
 public:
  SeededScenario(const std::string& test_binary, uint64_t seed)
      : seed_(seed),
        rng_(seed),
        trace_(__FILE__, __LINE__, ReplayMessage(test_binary, seed)) {}

  uint64_t seed() const { return seed_; }
  /// The scenario's generator, seeded with seed().
  std::mt19937_64& rng() { return rng_; }

 private:
  static std::string ReplayMessage(const std::string& test_binary,
                                   uint64_t seed) {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::string filter = "<unknown test>";
    if (info != nullptr) {
      filter = std::string(info->test_suite_name()) + "." + info->name();
    }
    return "seed=" + std::to_string(seed) + "  replay: ./tests/" +
           test_binary + " --gtest_filter='" + filter + "'";
  }

  uint64_t seed_;
  std::mt19937_64 rng_;
  ::testing::ScopedTrace trace_;
};

/// Emits up to `k` plans from `orderer` (all plans when k < 0).
inline std::vector<core::OrderedPlan> Drain(core::Orderer& orderer,
                                            int k = -1) {
  std::vector<core::OrderedPlan> plans;
  while (k < 0 || static_cast<int>(plans.size()) < k) {
    auto next = orderer.Next();
    if (!next.ok()) {
      EXPECT_EQ(next.status().code(), StatusCode::kNotFound) << next.status();
      break;
    }
    plans.push_back(*next);
  }
  return plans;
}

}  // namespace planorder::test

#endif  // PLANORDER_TESTS_TEST_UTIL_H_
