#ifndef PLANORDER_TESTS_TEST_UTIL_H_
#define PLANORDER_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/idrips.h"
#include "core/orderer.h"
#include "core/pi.h"
#include "core/streamer.h"
#include "utility/cost_models.h"
#include "utility/coverage_model.h"
#include "utility/measures.h"

namespace planorder::test {

inline stats::Workload MakeWorkload(int query_length, int bucket_size,
                                    double overlap, uint64_t seed) {
  stats::WorkloadOptions options;
  options.query_length = query_length;
  options.bucket_size = bucket_size;
  options.overlap_rate = overlap;
  options.regions_per_bucket = 12;
  options.seed = seed;
  auto w = stats::Workload::Generate(options);
  EXPECT_TRUE(w.ok()) << w.status();
  return std::move(*w);
}

/// The utility measures of Section 6, via the library factory.
using Measure = utility::MeasureKind;

inline std::string MeasureName(Measure m) {
  return utility::MeasureKindName(m);
}

inline std::unique_ptr<utility::UtilityModel> MustMakeMeasure(
    Measure measure, const stats::Workload* w) {
  auto model = ::planorder::utility::MakeMeasure(measure, w);
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(*model);
}

/// Emits up to `k` plans from `orderer` (all plans when k < 0).
inline std::vector<core::OrderedPlan> Drain(core::Orderer& orderer,
                                            int k = -1) {
  std::vector<core::OrderedPlan> plans;
  while (k < 0 || static_cast<int>(plans.size()) < k) {
    auto next = orderer.Next();
    if (!next.ok()) {
      EXPECT_EQ(next.status().code(), StatusCode::kNotFound) << next.status();
      break;
    }
    plans.push_back(*next);
  }
  return plans;
}

}  // namespace planorder::test

#endif  // PLANORDER_TESTS_TEST_UTIL_H_
