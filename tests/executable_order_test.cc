#include "reformulation/executable_order.h"

#include <gtest/gtest.h>

#include "datalog/parser.h"
#include "core/greedy.h"
#include "exec/dependent_join.h"
#include "exec/mediator.h"
#include "exec/source_access.h"
#include "reformulation/bucket.h"
#include "utility/cost_models.h"

namespace planorder::reformulation {
namespace {

using datalog::Atom;
using datalog::ConjunctiveQuery;
using datalog::ParseRule;
using datalog::Term;

class BindingPatternFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.schema().AddRelation("play-in", 2).ok());
    ASSERT_TRUE(catalog_.schema().AddRelation("review-of", 2).ok());
    // v1 is a free actor->movie source; v4 is a web form that NEEDS the
    // movie (second argument) bound before it returns reviews.
    auto v1 = catalog_.AddSourceFromText("v1(A,M) :- play-in(A,M)");
    auto v4 = catalog_.AddSourceFromText("v4(R,M) :- review-of(R,M)");
    ASSERT_TRUE(v1.ok() && v4.ok());
    ASSERT_TRUE(catalog_.SetBindingPattern(*v4, "fb").ok());
    auto q = ParseRule("q(M,R) :- play-in(ford,M), review-of(R,M)");
    ASSERT_TRUE(q.ok());
    query_ = *q;
  }

  datalog::Catalog catalog_;
  ConjunctiveQuery query_;
};

TEST_F(BindingPatternFixture, CatalogValidatesPatterns) {
  EXPECT_FALSE(catalog_.SetBindingPattern(0, "b").ok());     // wrong length
  EXPECT_FALSE(catalog_.SetBindingPattern(0, "bx").ok());    // bad character
  EXPECT_FALSE(catalog_.SetBindingPattern(99, "bf").ok());   // unknown id
  EXPECT_TRUE(catalog_.SetBindingPattern(0, "bf").ok());
  EXPECT_TRUE(catalog_.source(0).RequiresBound(0));
  EXPECT_FALSE(catalog_.source(0).RequiresBound(1));
}

TEST_F(BindingPatternFixture, OrdersBoundSourceAfterItsProducer) {
  auto plan = BuildSoundPlan(query_, catalog_, {0, 1});
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->has_value());
  // Flip the body so the bound-requiring v4 comes first; the executable
  // order must put v1 back in front.
  QueryPlan flipped = **plan;
  std::swap(flipped.rewriting.body[0], flipped.rewriting.body[1]);
  std::swap(flipped.sources[0], flipped.sources[1]);
  auto ordered = FindExecutableOrder(flipped, catalog_);
  ASSERT_TRUE(ordered.ok()) << ordered.status();
  ASSERT_EQ(ordered->rewriting.body.size(), 2u);
  EXPECT_EQ(ordered->rewriting.body[0].predicate, "v1");
  EXPECT_EQ(ordered->rewriting.body[1].predicate, "v4");
  EXPECT_EQ(ordered->sources, (std::vector<datalog::SourceId>{0, 1}));
}

TEST_F(BindingPatternFixture, DetectsUnexecutablePlans) {
  // Make v1 require its movie bound too: now neither atom can go first.
  ASSERT_TRUE(catalog_.SetBindingPattern(0, "fb").ok());
  auto plan = BuildSoundPlan(query_, catalog_, {0, 1});
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->has_value());
  auto ordered = FindExecutableOrder(**plan, catalog_);
  EXPECT_FALSE(ordered.ok());
  EXPECT_EQ(ordered.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(BindingPatternFixture, ConstantsSatisfyBindings) {
  // A source requiring the ACTOR bound is satisfied by the query constant.
  ASSERT_TRUE(catalog_.SetBindingPattern(0, "bf").ok());
  auto plan = BuildSoundPlan(query_, catalog_, {0, 1});
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->has_value());
  auto ordered = FindExecutableOrder(**plan, catalog_);
  ASSERT_TRUE(ordered.ok()) << ordered.status();
  EXPECT_EQ(ordered->rewriting.body[0].predicate, "v1");
}

TEST_F(BindingPatternFixture, AccessLayerEnforcesPatterns) {
  exec::SourceRegistry registry;
  auto v1 = registry.Register("v1", 2);
  auto v4 = registry.Register("v4", 2);
  ASSERT_TRUE(v1.ok() && v4.ok());
  ASSERT_TRUE((*v4)->set_binding_pattern("fb").ok());
  ASSERT_TRUE(
      (*v1)->Add({Term::Constant("ford"), Term::Constant("witness")}).ok());
  ASSERT_TRUE(
      (*v4)->Add({Term::Constant("r1"), Term::Constant("witness")}).ok());

  // Executing v4 first (movie unbound) must fail...
  auto bad = ParseRule("q(M,R) :- v4(R,M), v1(ford,M)");
  ASSERT_TRUE(bad.ok());
  auto bad_result = exec::ExecutePlanDependent(*bad, registry);
  EXPECT_FALSE(bad_result.ok());
  EXPECT_EQ(bad_result.status().code(), StatusCode::kFailedPrecondition);

  // ... and succeed in the executable order.
  auto good = ParseRule("q(M,R) :- v1(ford,M), v4(R,M)");
  ASSERT_TRUE(good.ok());
  auto good_result = exec::ExecutePlanDependent(*good, registry);
  ASSERT_TRUE(good_result.ok()) << good_result.status();
  EXPECT_EQ(good_result->size(), 1u);
}

TEST_F(BindingPatternFixture, MediatorReordersAndRunsEndToEnd) {
  // Source facts for the set-oriented path.
  datalog::Database facts;
  auto add = [&](const char* p, const char* a, const char* b) {
    facts.AddFact(Atom(p, {Term::Constant(a), Term::Constant(b)}));
  };
  add("v1", "ford", "witness");
  add("v1", "ford", "sabrina");
  add("v4", "r1", "witness");
  add("v4", "r2", "sabrina");

  auto buckets = BuildBuckets(query_, catalog_);
  ASSERT_TRUE(buckets.ok());
  std::vector<std::vector<stats::SourceStats>> bucket_stats(2);
  for (size_t b = 0; b < 2; ++b) {
    stats::SourceStats s;
    s.cardinality = 2;
    s.regions.bits = 1;
    bucket_stats[b].push_back(s);
  }
  auto workload =
      stats::Workload::FromParts(bucket_stats, {{1.0}, {1.0}}, 5.0, {8.0, 8.0});
  ASSERT_TRUE(workload.ok());
  utility::AdditiveCostModel model(&*workload);
  auto orderer = core::GreedyOrderer::Create(
      &*workload, &model, {core::PlanSpace::FullSpace(*workload)});
  ASSERT_TRUE(orderer.ok());

  exec::Mediator mediator(&catalog_, query_, &facts, buckets->buckets);
  auto result = mediator.Run(**orderer, 4);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->steps.size(), 1u);
  EXPECT_TRUE(result->steps[0].sound);
  EXPECT_TRUE(result->steps[0].executable);
  EXPECT_EQ(result->total_answers, 2u);
}

TEST_F(BindingPatternFixture, UnexecutablePlanIsDiscardedByMediator) {
  ASSERT_TRUE(catalog_.SetBindingPattern(0, "fb").ok());  // v1 needs M too
  datalog::Database facts;
  auto buckets = BuildBuckets(query_, catalog_);
  ASSERT_TRUE(buckets.ok());
  std::vector<std::vector<stats::SourceStats>> bucket_stats(2);
  for (size_t b = 0; b < 2; ++b) {
    stats::SourceStats s;
    s.cardinality = 2;
    s.regions.bits = 1;
    bucket_stats[b].push_back(s);
  }
  auto workload =
      stats::Workload::FromParts(bucket_stats, {{1.0}, {1.0}}, 5.0, {8.0, 8.0});
  ASSERT_TRUE(workload.ok());
  utility::AdditiveCostModel model(&*workload);
  auto orderer = core::GreedyOrderer::Create(
      &*workload, &model, {core::PlanSpace::FullSpace(*workload)});
  ASSERT_TRUE(orderer.ok());
  exec::Mediator mediator(&catalog_, query_, &facts, buckets->buckets);
  auto result = mediator.Run(**orderer, 4);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->steps.size(), 1u);
  EXPECT_TRUE(result->steps[0].sound);
  EXPECT_FALSE(result->steps[0].executable);
  EXPECT_EQ(result->total_answers, 0u);
}

TEST(ExecutableOrderTest, ComparisonsPlacedAsSoonAsBound) {
  datalog::Catalog catalog;
  ASSERT_TRUE(catalog.schema().AddRelation("sells", 2).ok());
  ASSERT_TRUE(catalog.schema().AddRelation("review", 2).ok());
  auto shop = catalog.AddSourceFromText("shop(C,P) :- sells(C,P)");
  auto rev = catalog.AddSourceFromText("rev(C,R) :- review(C,R)");
  ASSERT_TRUE(shop.ok() && rev.ok());
  ASSERT_TRUE(catalog.SetBindingPattern(*rev, "bf").ok());
  auto query = ParseRule("q(C,R) :- sells(C,P), review(C,R), lt(P, 400)");
  ASSERT_TRUE(query.ok());
  auto plan = BuildSoundPlan(*query, catalog, {0, 1});
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->has_value());
  auto ordered = FindExecutableOrder(**plan, catalog);
  ASSERT_TRUE(ordered.ok()) << ordered.status();
  ASSERT_EQ(ordered->rewriting.body.size(), 3u);
  // shop first (binds C and P), then the price filter, then the bound rev.
  EXPECT_EQ(ordered->rewriting.body[0].predicate, "shop");
  EXPECT_EQ(ordered->rewriting.body[1].predicate, "lt");
  EXPECT_EQ(ordered->rewriting.body[2].predicate, "rev");
}

}  // namespace
}  // namespace planorder::reformulation
