#include "service/reformulation_cache.h"

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datalog/parser.h"

namespace planorder::service {
namespace {

std::shared_ptr<CachedReformulation> EntryFor(const std::string& text) {
  auto entry = std::make_shared<CachedReformulation>();
  auto rule = datalog::ParseRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status();
  entry->canonical = datalog::CanonicalizeQuery(*rule);
  return entry;
}

TEST(ReformulationCacheTest, MissThenHit) {
  ReformulationCache cache(4);
  auto entry = EntryFor("Q(X) :- r(X,Y).");
  EXPECT_EQ(cache.Lookup(entry->canonical), nullptr);
  cache.Insert(entry);
  auto found = cache.Lookup(entry->canonical);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->canonical.key, entry->canonical.key);

  const ReformulationCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.size, 1u);
}

TEST(ReformulationCacheTest, IsomorphicQueriesShareAnEntry) {
  ReformulationCache cache(4);
  cache.Insert(EntryFor("Q(X) :- edge(X,Z), edge(Z,Y)."));
  // A renamed, permuted isomorph canonicalizes to the same key.
  auto isomorph = EntryFor("Q(A) :- edge(M,B), edge(A,M).");
  EXPECT_NE(cache.Lookup(isomorph->canonical), nullptr);
}

TEST(ReformulationCacheTest, EvictsLeastRecentlyUsed) {
  ReformulationCache cache(2);
  auto a = EntryFor("Q(X) :- r(X).");
  auto b = EntryFor("Q(X) :- s(X).");
  auto c = EntryFor("Q(X) :- t(X).");
  cache.Insert(a);
  cache.Insert(b);
  // Touch `a` so `b` is the LRU victim when `c` arrives.
  EXPECT_NE(cache.Lookup(a->canonical), nullptr);
  cache.Insert(c);

  EXPECT_NE(cache.Lookup(a->canonical), nullptr);
  EXPECT_EQ(cache.Lookup(b->canonical), nullptr);
  EXPECT_NE(cache.Lookup(c->canonical), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(ReformulationCacheTest, HashCollisionWithDifferentKeyIsAMiss) {
  ReformulationCache cache(4);
  auto a = EntryFor("Q(X) :- r(X).");
  cache.Insert(a);
  // Forge a lookup with a's hash but a different canonical key: the cache
  // must refuse to serve it and count the collision.
  auto b = EntryFor("Q(X) :- s(X).");
  datalog::CanonicalQuery forged = b->canonical;
  forged.hash = a->canonical.hash;
  EXPECT_EQ(cache.Lookup(forged), nullptr);
  EXPECT_EQ(cache.stats().collisions, 1);
}

TEST(ReformulationCacheTest, ZeroCapacityDisablesCaching) {
  ReformulationCache cache(0);
  auto a = EntryFor("Q(X) :- r(X).");
  cache.Insert(a);
  EXPECT_EQ(cache.Lookup(a->canonical), nullptr);
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().insertions, 0);
}

TEST(ReformulationCacheTest, EntriesSurviveEvictionWhileHeld) {
  // A session holds its reformulation by shared_ptr; eviction must not free
  // it out from under the session's orderer.
  ReformulationCache cache(1);
  auto a = EntryFor("Q(X) :- r(X).");
  cache.Insert(a);
  std::shared_ptr<const CachedReformulation> held = cache.Lookup(a->canonical);
  ASSERT_NE(held, nullptr);
  cache.Insert(EntryFor("Q(X) :- s(X)."));  // evicts a
  EXPECT_EQ(cache.Lookup(a->canonical), nullptr);
  EXPECT_EQ(held->canonical.key, a->canonical.key);  // still alive and intact
}

TEST(ReformulationCacheTest, ReinsertSameKeyReplacesInPlace) {
  ReformulationCache cache(4);
  cache.Insert(EntryFor("Q(X) :- r(X)."));
  cache.Insert(EntryFor("Q(Y) :- r(Y)."));  // isomorph: same key
  EXPECT_EQ(cache.stats().size, 1u);
  EXPECT_EQ(cache.stats().evictions, 0);
}

TEST(ReformulationCacheTest, EvictionStaysDeterministicUnderConcurrentHits) {
  // Many threads hammer hits on two resident entries of a capacity-2 cache.
  // The races perturb only the relative recency of a and b; they must never
  // lose a hit count, tear an entry, or trip an eviction. Afterwards one
  // sequential hit pins `a` as most recently used, so the next insert's LRU
  // victim is fully determined again — concurrency cannot leave the recency
  // list in a state where eviction picks a hit-refreshed entry.
  ReformulationCache cache(2);
  auto a = EntryFor("Q(X) :- r(X).");
  auto b = EntryFor("Q(X) :- s(X).");
  cache.Insert(a);
  cache.Insert(b);

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &a, &b] {
      for (int i = 0; i < kItersPerThread; ++i) {
        ASSERT_NE(cache.Lookup(a->canonical), nullptr);
        ASSERT_NE(cache.Lookup(b->canonical), nullptr);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  ReformulationCache::Stats stats = cache.stats();
  // Exact hit accounting: no lost updates under contention. (+2 misses from
  // the initial inserts' lookups never happened — Insert doesn't look up.)
  EXPECT_EQ(stats.hits, int64_t(kThreads) * kItersPerThread * 2);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.size, 2u);

  // A final sequential hit refreshes `a`'s recency deterministically; the
  // insert that overflows capacity must therefore evict `b`.
  ASSERT_NE(cache.Lookup(a->canonical), nullptr);
  cache.Insert(EntryFor("Q(X) :- t(X)."));
  EXPECT_NE(cache.Lookup(a->canonical), nullptr);
  EXPECT_EQ(cache.Lookup(b->canonical), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().size, 2u);
}

}  // namespace
}  // namespace planorder::service
