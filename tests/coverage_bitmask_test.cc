#include "stats/bitmask_universe.h"

#include <cstdint>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "stats/coverage_universe.h"

namespace planorder::stats {
namespace {

// Differential suite: BitmaskUniverse is the compiled form of the coverage
// universe the ordering core evaluates against (DESIGN.md §11); the cell-set
// CoverageUniverse stays in the tree as the executable specification. The two
// must agree on every query — to rounding, since the trie sums residuals with
// different (but equally deterministic) floating-point grouping.
constexpr double kTol = 1e-9;

std::vector<double> Uniform(int n) {
  return std::vector<double>(n, 1.0 / n);
}

// One random universe driven through an interleaved add/query schedule, every
// query answered by both implementations.
struct Differential {
  explicit Differential(std::vector<std::vector<double>> weights)
      : reference(weights), compiled(std::move(weights)) {}

  void Add(const std::vector<RegionMask>& box) {
    reference.AddBox(box);
    compiled.AddBox(box);
  }

  void ExpectAgree(const std::vector<RegionMask>& box) {
    EXPECT_NEAR(compiled.BoxVolume(box), reference.BoxVolume(box), kTol);
    EXPECT_NEAR(compiled.UncoveredBoxVolume(box),
                reference.UncoveredBoxVolume(box), kTol);
    EXPECT_EQ(compiled.num_covered_boxes(), reference.num_covered_boxes());
  }

  CoverageUniverse reference;
  BitmaskUniverse compiled;
};

TEST(CoverageBitmaskTest, RandomizedDifferential) {
  // 100 universes x 10 interleaved add/query steps = 1000 randomized cases.
  std::mt19937_64 rng(20260809);
  for (int scenario = 0; scenario < 100; ++scenario) {
    const int dims = std::uniform_int_distribution<int>(1, 5)(rng);
    std::vector<std::vector<double>> weights(dims);
    std::vector<int> regions(dims);
    for (int d = 0; d < dims; ++d) {
      regions[d] = std::uniform_int_distribution<int>(1, 8)(rng);
      weights[d].resize(regions[d]);
      double total = 0.0;
      for (double& w : weights[d]) {
        // A zero weight every few regions exercises the zero-prefix skips.
        w = std::uniform_int_distribution<int>(0, 4)(rng) == 0
                ? 0.0
                : std::uniform_real_distribution<double>(0.1, 1.0)(rng);
        total += w;
      }
      if (total > 0.0) {
        for (double& w : weights[d]) w /= total;
      } else {
        weights[d][0] = 1.0;
      }
    }
    Differential diff(weights);
    auto random_box = [&] {
      std::vector<RegionMask> box(dims);
      for (int d = 0; d < dims; ++d) {
        // Bias toward non-empty masks but keep empty ones reachable.
        const uint64_t all = (uint64_t{1} << regions[d]) - 1;
        box[d].bits = std::uniform_int_distribution<uint64_t>(0, all)(rng);
      }
      return box;
    };
    for (int step = 0; step < 10; ++step) {
      diff.ExpectAgree(random_box());
      diff.Add(random_box());
    }
    diff.ExpectAgree(random_box());
    diff.compiled.Clear();
    diff.reference.Clear();
    diff.ExpectAgree(random_box());
  }
}

TEST(CoverageBitmaskTest, MaskWeightMatchesReference) {
  std::mt19937_64 rng(91);
  std::vector<std::vector<double>> weights(1);
  weights[0].resize(64);
  for (double& w : weights[0]) {
    w = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
  }
  CoverageUniverse reference(weights);
  BitmaskUniverse compiled(weights);
  for (int i = 0; i < 1000; ++i) {
    const RegionMask mask{rng()};
    EXPECT_NEAR(compiled.MaskWeight(0, mask), reference.MaskWeight(0, mask),
                kTol);
  }
}

TEST(CoverageBitmaskTest, EmptyUniverseFastPathReturnsBoxVolume) {
  // No executed boxes: residual == volume, exactly (same code path).
  BitmaskUniverse u({{2.0, 3.0}, {0.5, 4.0, 1.5}});
  const std::vector<RegionMask> box = {RegionMask{0b11}, RegionMask{0b101}};
  EXPECT_EQ(u.num_covered_boxes(), 0);
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume(box), u.BoxVolume(box));
  EXPECT_DOUBLE_EQ(u.BoxVolume(box), 5.0 * 2.0);
}

TEST(CoverageBitmaskTest, DisjointDimensionFastPathReturnsFullVolume) {
  Differential diff({Uniform(4), Uniform(4)});
  diff.Add({RegionMask{0b0011}, RegionMask{0b1111}});
  // Disjoint from the executed union in dimension 0: nothing is covered.
  const std::vector<RegionMask> probe = {RegionMask{0b1100},
                                         RegionMask{0b1111}};
  EXPECT_DOUBLE_EQ(diff.compiled.UncoveredBoxVolume(probe),
                   diff.compiled.BoxVolume(probe));
  diff.ExpectAgree(probe);
}

TEST(CoverageBitmaskTest, ContainedBoxFastPathIsExactlyZero) {
  Differential diff({Uniform(4), Uniform(4)});
  diff.Add({RegionMask{0b0111}, RegionMask{0b1110}});
  // Inside the executed box in every dimension: covered, exactly 0.
  const std::vector<RegionMask> probe = {RegionMask{0b0011},
                                         RegionMask{0b0110}};
  EXPECT_EQ(diff.compiled.UncoveredBoxVolume(probe), 0.0);
  diff.ExpectAgree(probe);
}

TEST(CoverageBitmaskTest, FullySaturatedUniverseIsExactlyZeroEverywhere) {
  // Once every cell is covered, the trie's root is full and every residual
  // is exactly 0.0 (the full-subtree skip, not a rounded sum).
  const int regions = 6;
  BitmaskUniverse u({Uniform(regions), Uniform(regions), Uniform(regions)});
  const uint64_t all = (uint64_t{1} << regions) - 1;
  for (int r = 0; r < regions; ++r) {
    // Cover slab by slab so fullness has to propagate across levels.
    u.AddBox({RegionMask{uint64_t{1} << r}, RegionMask{all}, RegionMask{all}});
  }
  std::mt19937_64 rng(7);
  for (int i = 0; i < 100; ++i) {
    std::vector<RegionMask> probe(3);
    for (auto& mask : probe) {
      mask.bits = std::uniform_int_distribution<uint64_t>(1, all)(rng);
    }
    EXPECT_EQ(u.UncoveredBoxVolume(probe), 0.0);
  }
}

TEST(CoverageBitmaskTest, UntouchedSubtreeClosedFormMatchesCellWalk) {
  // Execute only under region 0 of dimension 0; probes under other regions
  // hit the closed-form (never-visited subtree) path.
  Differential diff({Uniform(8), Uniform(8), Uniform(8)});
  diff.Add({RegionMask{0b1}, RegionMask{0x0f}, RegionMask{0x33}});
  std::mt19937_64 rng(11);
  for (int i = 0; i < 200; ++i) {
    std::vector<RegionMask> probe(3);
    for (auto& mask : probe) {
      mask.bits = std::uniform_int_distribution<uint64_t>(0, 0xff)(rng);
    }
    diff.ExpectAgree(probe);
  }
}

TEST(CoverageBitmaskTest, SixtyFourRegionBoundary) {
  Differential diff({Uniform(64), Uniform(64)});
  const std::vector<RegionMask> all = {RegionMask{~uint64_t{0}},
                                       RegionMask{~uint64_t{0}}};
  diff.ExpectAgree(all);
  diff.Add({RegionMask{~uint64_t{0}}, RegionMask{uint64_t{1} << 63}});
  diff.ExpectAgree(all);
  diff.Add(all);
  diff.ExpectAgree(all);
  EXPECT_EQ(diff.compiled.UncoveredBoxVolume(all), 0.0);
}

TEST(CoverageBitmaskTest, EmptyMaskBoxesCoverNothingButCountAsExecuted) {
  Differential diff({Uniform(4), Uniform(4)});
  // A box empty in one dimension has no cells; it must still advance the
  // executed count and the union/intersection fast-path state identically.
  diff.Add({RegionMask{0}, RegionMask{0b1111}});
  std::mt19937_64 rng(3);
  for (int i = 0; i < 50; ++i) {
    std::vector<RegionMask> probe(2);
    for (auto& mask : probe) {
      mask.bits = std::uniform_int_distribution<uint64_t>(0, 0b1111)(rng);
    }
    diff.ExpectAgree(probe);
  }
}

TEST(CoverageBitmaskTest, ClearForgetsExecutions) {
  BitmaskUniverse u({Uniform(2), Uniform(2)});
  const std::vector<RegionMask> box = {RegionMask{0b11}, RegionMask{0b11}};
  u.AddBox(box);
  EXPECT_EQ(u.UncoveredBoxVolume(box), 0.0);
  u.Clear();
  EXPECT_EQ(u.num_covered_boxes(), 0);
  EXPECT_DOUBLE_EQ(u.UncoveredBoxVolume(box), u.BoxVolume(box));
}

}  // namespace
}  // namespace planorder::stats
