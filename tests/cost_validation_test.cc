/// Validates the bound-join cost model (measure (2)) against *measured*
/// execution: plans executed by dependent joins against materialized
/// sources produce access traces (calls, shipped tuples) whose costs the
/// model is supposed to estimate. The estimates need not be exact (the
/// model's join-size term n_j * t / N is a coarse estimate), but
///  - the first atom's shipped count must equal the modeled cardinality
///    (sources ship their full answer for the bound pattern), and
///  - ordering plans by modeled cost must put genuinely cheap plans first:
///    the measured cost of the model's best quartile must beat the worst
///    quartile.

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "exec/dependent_join.h"
#include "exec/synthetic_domain.h"
#include "reformulation/rewriting.h"
#include "utility/cost_models.h"

namespace planorder::exec {
namespace {

struct MeasuredPlan {
  utility::ConcretePlan plan;
  double modeled_utility = 0.0;  // -cost from the model
  double measured_cost = 0.0;    // from the execution trace
  ExecutionTrace trace;
};

class CostValidationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CostValidationTest, ModeledCostTracksMeasuredAccessCost) {
  stats::WorkloadOptions options;
  options.query_length = 3;
  options.bucket_size = 4;
  options.overlap_rate = 0.4;
  options.regions_per_bucket = 8;
  options.seed = GetParam();
  auto domain = BuildSyntheticDomain(options, /*num_answers=*/400);
  ASSERT_TRUE(domain.ok());
  const SyntheticDomain& d = **domain;

  // Materialize the registry from the domain's source facts.
  SourceRegistry registry;
  for (datalog::SourceId id = 0; id < d.catalog.num_sources(); ++id) {
    const std::string& name = d.catalog.source(id).name;
    auto source = registry.Register(name, 2);
    ASSERT_TRUE(source.ok());
    for (const auto& tuple : d.source_facts.TuplesFor(name)) {
      ASSERT_TRUE((*source)->Add(tuple).ok());
    }
  }

  auto model = utility::BoundJoinCostModel::Create(&d.workload,
                                                   utility::BoundJoinOptions{});
  ASSERT_TRUE(model.ok());
  utility::ExecutionContext ctx(&d.workload);
  const double h = d.workload.access_overhead();

  std::vector<MeasuredPlan> measured;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      for (int c = 0; c < 4; ++c) {
        MeasuredPlan mp;
        mp.plan = {a, b, c};
        mp.modeled_utility = (*model)->EvaluateConcrete(mp.plan, ctx);
        std::vector<datalog::SourceId> choice = {
            d.source_ids[0][a], d.source_ids[1][b], d.source_ids[2][c]};
        auto qp = reformulation::BuildSoundPlan(d.query, d.catalog, choice);
        ASSERT_TRUE(qp.ok());
        ASSERT_TRUE(qp->has_value());
        registry.ResetStats();
        auto answers =
            ExecutePlanDependent((*qp)->rewriting, registry, &mp.trace);
        ASSERT_TRUE(answers.ok()) << answers.status();
        std::vector<double> alphas(3);
        for (int i = 0; i < 3; ++i) {
          alphas[i] =
              d.workload.source(i, mp.plan[i]).transmission_cost;
        }
        mp.measured_cost = mp.trace.ModeledCost(h, alphas);

        // First atom: shipped count equals the modeled cardinality exactly
        // (empty sources carry a floor cardinality of 1).
        const double n0 = d.workload.source(0, a).cardinality;
        if (mp.trace.atoms[0].tuples_shipped > 0) {
          EXPECT_DOUBLE_EQ(double(mp.trace.atoms[0].tuples_shipped), n0);
        } else {
          EXPECT_DOUBLE_EQ(n0, 1.0);  // floor for empty sources
        }
        measured.push_back(std::move(mp));
      }
    }
  }

  // Rank by modeled utility (best first); the best quartile must be
  // genuinely cheaper to execute than the worst quartile.
  std::sort(measured.begin(), measured.end(),
            [](const MeasuredPlan& x, const MeasuredPlan& y) {
              return x.modeled_utility > y.modeled_utility;
            });
  const size_t quartile = measured.size() / 4;
  double best_sum = 0, worst_sum = 0;
  for (size_t i = 0; i < quartile; ++i) {
    best_sum += measured[i].measured_cost;
    worst_sum += measured[measured.size() - 1 - i].measured_cost;
  }
  EXPECT_LT(best_sum, worst_sum)
      << "model-best quartile should execute cheaper than model-worst";

  // And a coarse monotonicity signal: Spearman-style rank agreement above
  // chance. Compute the fraction of concordant pairs on a sample.
  int concordant = 0, discordant = 0;
  for (size_t i = 0; i < measured.size(); ++i) {
    for (size_t j = i + 1; j < measured.size(); ++j) {
      if (measured[i].measured_cost < measured[j].measured_cost) {
        ++concordant;
      } else if (measured[i].measured_cost > measured[j].measured_cost) {
        ++discordant;
      }
    }
  }
  EXPECT_GT(concordant, discordant);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostValidationTest,
                         ::testing::Values(61, 62, 63));

}  // namespace
}  // namespace planorder::exec
