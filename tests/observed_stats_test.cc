#include "adaptive/observed_stats.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "stats/workload.h"

namespace planorder::adaptive {
namespace {

runtime::SourceObservation Obs(int64_t rows, int64_t attempts,
                               int64_t failures, int64_t latency_micros,
                               bool call_failed = false) {
  runtime::SourceObservation obs;
  obs.rows = rows;
  obs.attempts = attempts;
  obs.failures = failures;
  obs.latency_micros = latency_micros;
  obs.call_failed = call_failed;
  return obs;
}

void ExpectSameEstimate(const SourceEstimate& a, const SourceEstimate& b) {
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.card_windows, b.card_windows);
  EXPECT_EQ(a.calls, b.calls);
  // Bit-exact: the determinism contract, not a tolerance comparison.
  EXPECT_EQ(a.cardinality, b.cardinality);
  EXPECT_EQ(a.latency_ms, b.latency_ms);
  EXPECT_EQ(a.failure_prob, b.failure_prob);
}

TEST(ObservedStatsTest, FirstWindowIsTakenVerbatim) {
  ObservedStats stats(ObservedStatsOptions{/*decay=*/0.25});
  stats.RecordFetch("s", Obs(10, 2, 1, 4000));
  stats.RecordFetch("s", Obs(20, 1, 0, 2000));
  EXPECT_EQ(stats.FoldWindow(), 1);

  const SourceEstimate e = stats.EstimateFor("s");
  EXPECT_EQ(e.windows, 1);
  EXPECT_EQ(e.card_windows, 1);
  EXPECT_EQ(e.calls, 2);
  EXPECT_EQ(e.cardinality, 15.0);       // (10 + 20) / 2 ok calls
  EXPECT_EQ(e.latency_ms, 3.0);         // 6000 us / 2 calls
  EXPECT_EQ(e.failure_prob, 1.0 / 3.0); // 1 failure / 3 attempts
}

TEST(ObservedStatsTest, SecondWindowAppliesExponentialDecay) {
  const double decay = 0.25;
  ObservedStats stats(ObservedStatsOptions{decay});
  stats.RecordFetch("s", Obs(8, 1, 0, 1000));
  stats.FoldWindow();
  stats.RecordFetch("s", Obs(16, 1, 0, 3000));
  stats.FoldWindow();

  const SourceEstimate e = stats.EstimateFor("s");
  EXPECT_EQ(e.windows, 2);
  EXPECT_EQ(e.cardinality, decay * 16.0 + (1.0 - decay) * 8.0);
  EXPECT_EQ(e.latency_ms, decay * 3.0 + (1.0 - decay) * 1.0);
}

TEST(ObservedStatsTest, IngestionOrderWithinAWindowIsIrrelevant) {
  const std::vector<runtime::SourceObservation> observations = {
      Obs(3, 1, 0, 500), Obs(1000, 4, 3, 90000), Obs(0, 2, 2, 1234, true),
      Obs(42, 1, 0, 7)};

  ObservedStats forward;
  for (const auto& obs : observations) forward.RecordFetch("s", obs);
  forward.FoldWindow();

  ObservedStats backward;
  for (auto it = observations.rbegin(); it != observations.rend(); ++it) {
    backward.RecordFetch("s", *it);
  }
  backward.FoldWindow();

  ExpectSameEstimate(forward.EstimateFor("s"), backward.EstimateFor("s"));
}

TEST(ObservedStatsTest, ThreadedIngestionIsBitExact) {
  // 240 observations across 3 sources, ingested serially and by 2 and 8
  // threads: the folded estimates must agree bit for bit — RecordFetch is
  // integer-only, and integer addition commutes exactly.
  const int kObservations = 240;
  auto observation = [](int i) {
    return Obs(/*rows=*/i * 7 % 101, /*attempts=*/1 + i % 3,
               /*failures=*/i % 2, /*latency_micros=*/i * 13 % 9999,
               /*call_failed=*/i % 5 == 0);
  };
  auto source = [](int i) { return "s" + std::to_string(i % 3); };

  ObservedStats serial;
  for (int i = 0; i < kObservations; ++i) {
    serial.RecordFetch(source(i), observation(i));
  }
  serial.FoldWindow();

  for (int threads : {2, 8}) {
    ObservedStats parallel;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t]() {
        for (int i = t; i < kObservations; i += threads) {
          parallel.RecordFetch(source(i), observation(i));
        }
      });
    }
    for (std::thread& w : workers) w.join();
    parallel.FoldWindow();
    for (int s = 0; s < 3; ++s) {
      ExpectSameEstimate(serial.EstimateFor("s" + std::to_string(s)),
                         parallel.EstimateFor("s" + std::to_string(s)));
    }
  }
}

TEST(ObservedStatsTest, FailedCallsNeverUpdateCardinality) {
  ObservedStats stats;
  stats.RecordFetch("s", Obs(0, 3, 3, 5000, /*call_failed=*/true));
  stats.FoldWindow();

  const SourceEstimate e = stats.EstimateFor("s");
  EXPECT_EQ(e.windows, 1);
  EXPECT_EQ(e.card_windows, 0);  // zero rows said nothing about cardinality
  EXPECT_EQ(e.cardinality, 0.0);
  EXPECT_EQ(e.failure_prob, 1.0);
}

TEST(ObservedStatsTest, EmptyFoldDoesNotAdvanceTheGeneration) {
  ObservedStats stats;
  EXPECT_EQ(stats.FoldWindow(), 0);
  EXPECT_EQ(stats.generation(), 0);
  stats.RecordFetch("s", Obs(1, 1, 0, 0));
  stats.FoldWindow();
  EXPECT_EQ(stats.generation(), 1);
}

TEST(ObservedStatsTest, RestoreRoundTripsTheSnapshot) {
  ObservedStats stats(ObservedStatsOptions{0.7});
  stats.RecordFetch("a", Obs(5, 2, 1, 1500));
  stats.RecordFetch("b", Obs(0, 1, 1, 20, true));
  stats.FoldWindow();
  stats.RecordFetch("a", Obs(9, 1, 0, 400));
  stats.FoldWindow();

  ObservedStats restored;
  for (const auto& [name, estimate] : stats.Snapshot()) {
    restored.Restore(name, estimate);
  }
  EXPECT_GT(restored.generation(), 0);
  for (const char* name : {"a", "b"}) {
    ExpectSameEstimate(stats.EstimateFor(name), restored.EstimateFor(name));
  }
}

TEST(BlendWorkloadTest, ZeroObservationsYieldsBitIdenticalCopy) {
  stats::WorkloadOptions options;
  options.query_length = 3;
  options.bucket_size = 4;
  options.seed = 11;
  auto workload = stats::Workload::Generate(options);
  ASSERT_TRUE(workload.ok()) << workload.status();

  ObservedStats observed;  // nothing ever recorded
  std::vector<std::vector<std::string>> names(3,
                                              std::vector<std::string>(4));
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < 4; ++i) {
      names[b][i] = "b" + std::to_string(b) + "_s" + std::to_string(i);
    }
  }
  auto blended = BlendWorkload(*workload, names, observed);
  ASSERT_TRUE(blended.ok()) << blended.status();

  for (int b = 0; b < workload->num_buckets(); ++b) {
    EXPECT_EQ(blended->domain_size(b), workload->domain_size(b));
    for (int i = 0; i < workload->bucket_size(b); ++i) {
      const stats::SourceStats& want = workload->source(b, i);
      const stats::SourceStats& got = blended->source(b, i);
      EXPECT_EQ(got.cardinality, want.cardinality);
      EXPECT_EQ(got.transmission_cost, want.transmission_cost);
      EXPECT_EQ(got.failure_prob, want.failure_prob);
      EXPECT_EQ(got.fee, want.fee);
      EXPECT_EQ(got.regions.bits, want.regions.bits);
    }
  }
  EXPECT_EQ(blended->access_overhead(), workload->access_overhead());
  EXPECT_EQ(blended->region_weights(), workload->region_weights());
}

TEST(BlendWorkloadTest, ObservedSourcesAreOverlaid) {
  stats::WorkloadOptions options;
  options.query_length = 1;
  options.bucket_size = 2;
  options.seed = 3;
  auto workload = stats::Workload::Generate(options);
  ASSERT_TRUE(workload.ok()) << workload.status();

  ObservedStats observed;
  // Source 0: one successful call, 50 rows over 10 ms.
  observed.RecordFetch("s0", Obs(50, 1, 0, 10000));
  // Source 1: failures only — failure_prob overlays, cardinality stays.
  observed.RecordFetch("s1", Obs(0, 4, 4, 100, true));
  observed.FoldWindow();

  auto blended = BlendWorkload(*workload, {{"s0", "s1"}}, observed);
  ASSERT_TRUE(blended.ok()) << blended.status();

  EXPECT_EQ(blended->source(0, 0).cardinality, 50.0);
  EXPECT_EQ(blended->source(0, 0).transmission_cost, 10.0 / 50.0);
  EXPECT_EQ(blended->source(0, 0).failure_prob, 0.0);

  EXPECT_EQ(blended->source(0, 1).cardinality,
            workload->source(0, 1).cardinality);
  EXPECT_EQ(blended->source(0, 1).transmission_cost,
            workload->source(0, 1).transmission_cost);
  // 4 failures / 4 attempts, clamped below 1.0 for the failure measures.
  EXPECT_EQ(blended->source(0, 1).failure_prob, 0.95);
}

TEST(BlendWorkloadTest, RejectsMismatchedNameGrid) {
  stats::WorkloadOptions options;
  options.query_length = 2;
  options.bucket_size = 2;
  auto workload = stats::Workload::Generate(options);
  ASSERT_TRUE(workload.ok()) << workload.status();
  ObservedStats observed;
  EXPECT_FALSE(BlendWorkload(*workload, {{"a", "b"}}, observed).ok());
  EXPECT_FALSE(BlendWorkload(*workload, {{"a"}, {"b", "c"}}, observed).ok());
}

}  // namespace
}  // namespace planorder::adaptive
